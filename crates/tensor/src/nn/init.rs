//! Weight initialization schemes.

use crate::array::Array;
use rand::Rng;

/// Glorot/Xavier uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`, fans taken from the last two axes
/// (or the single axis for vectors).
pub fn xavier_uniform<R: Rng>(shape: &[usize], rng: &mut R) -> Array {
    let (fan_in, fan_out) = match shape.len() {
        0 => (1, 1),
        1 => (shape[0], shape[0]),
        n => (shape[n - 2], shape[n - 1]),
    };
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Array::rand_uniform(shape, -a, a, rng)
}

/// All-zeros initialization (biases).
pub fn zeros_init(shape: &[usize]) -> Array {
    Array::zeros(shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = xavier_uniform(&[100, 50], &mut rng);
        let a = (6.0f32 / 150.0).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= a));
        // Not degenerate.
        assert!(w.data().iter().any(|v| v.abs() > a / 2.0));
    }

    #[test]
    fn xavier_vector_and_scalar() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(xavier_uniform(&[7], &mut rng).numel(), 7);
        assert_eq!(xavier_uniform(&[], &mut rng).numel(), 1);
        assert_eq!(zeros_init(&[3]).sum_all(), 0.0);
    }
}
