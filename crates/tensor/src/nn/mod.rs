//! Neural-network building blocks: layers own parameter [`Tensor`]s and
//! expose `forward`-style methods plus a uniform way to enumerate parameters
//! for the optimizer.

mod attention;
mod conv;
mod embedding;
mod gru;
mod init;
mod linear;
mod lstm;
mod norm;

pub use attention::{positional_encoding, MultiHeadSelfAttention};
pub use conv::CausalConv1d;
pub use embedding::Embedding;
pub use gru::{Gru, GruCell};
pub use init::{xavier_uniform, zeros_init};
pub use linear::{Linear, Mlp};
pub use lstm::{Lstm, LstmCell};
pub use norm::LayerNorm;

use crate::tensor::Tensor;

/// Anything that owns trainable parameters.
pub trait Module {
    /// All trainable parameters, in a stable order.
    fn parameters(&self) -> Vec<Tensor>;

    /// Total number of scalar parameters.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(Tensor::numel).sum()
    }
}

/// Collect parameters from a list of modules.
pub fn collect_parameters(modules: &[&dyn Module]) -> Vec<Tensor> {
    modules.iter().flat_map(|m| m.parameters()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn collect_and_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Linear::new(4, 3, true, &mut rng);
        let b = Linear::new(3, 2, false, &mut rng);
        let params = collect_parameters(&[&a, &b]);
        assert_eq!(params.len(), 3); // W+b, W
        assert_eq!(a.num_parameters(), 4 * 3 + 3);
        assert_eq!(b.num_parameters(), 3 * 2);
    }
}
