//! Gated Recurrent Unit (Cho et al. 2014), the short-term temporal model of
//! the paper's inherent block (Eq. 10).

use super::init::xavier_uniform;
use super::Module;
use crate::array::Array;
use crate::tensor::Tensor;
use rand::Rng;

/// Single GRU step.
///
/// Gate parameters follow Eq. 10 of the paper:
/// `z = σ(W_z x + U_z h + b_z)`, `r = σ(W_r x + U_r h + b_r)`,
/// `ĥ = tanh(W_h x + r ⊙ (U_h h + b_h))`, `h' = (1−z) ⊙ h + z ⊙ ĥ`.
///
/// The `z`/`r` input and recurrent projections are fused into single matmuls.
pub struct GruCell {
    w_zr: Tensor, // [in, 2h]
    u_zr: Tensor, // [h, 2h]
    b_zr: Tensor, // [2h]
    w_h: Tensor,  // [in, h]
    u_h: Tensor,  // [h, h]
    b_h: Tensor,  // [h]
    hidden: usize,
}

impl GruCell {
    /// New cell mapping `input`-wide vectors to `hidden`-wide states.
    pub fn new<R: Rng>(input: usize, hidden: usize, rng: &mut R) -> Self {
        Self {
            w_zr: Tensor::parameter(xavier_uniform(&[input, 2 * hidden], rng)),
            u_zr: Tensor::parameter(xavier_uniform(&[hidden, 2 * hidden], rng)),
            b_zr: Tensor::parameter(Array::zeros(&[2 * hidden])),
            w_h: Tensor::parameter(xavier_uniform(&[input, hidden], rng)),
            u_h: Tensor::parameter(xavier_uniform(&[hidden, hidden], rng)),
            b_h: Tensor::parameter(Array::zeros(&[hidden])),
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// One step: `x` is `[B, in]`, `h` is `[B, hidden]`; returns `[B, hidden]`.
    pub fn step(&self, x: &Tensor, h: &Tensor) -> Tensor {
        let gates = x
            .matmul(&self.w_zr)
            .add(&h.matmul(&self.u_zr))
            .add(&self.b_zr);
        let z = gates.slice_axis(1, 0, self.hidden).sigmoid();
        let r = gates.slice_axis(1, self.hidden, 2 * self.hidden).sigmoid();
        let cand = x
            .matmul(&self.w_h)
            .add(&r.mul(&h.matmul(&self.u_h).add(&self.b_h)))
            .tanh();
        // (1 - z) ⊙ h + z ⊙ ĥ
        let ones = Tensor::constant(Array::ones(&z.shape()));
        ones.sub(&z).mul(h).add(&z.mul(&cand))
    }
}

impl Module for GruCell {
    fn parameters(&self) -> Vec<Tensor> {
        vec![
            self.w_zr.clone(),
            self.u_zr.clone(),
            self.b_zr.clone(),
            self.w_h.clone(),
            self.u_h.clone(),
            self.b_h.clone(),
        ]
    }
}

/// GRU unrolled over a sequence `[B, T, in] -> [B, T, hidden]`.
pub struct Gru {
    cell: GruCell,
}

impl Gru {
    /// New sequence GRU.
    pub fn new<R: Rng>(input: usize, hidden: usize, rng: &mut R) -> Self {
        Self {
            cell: GruCell::new(input, hidden, rng),
        }
    }

    /// Underlying cell (for manual stepping, e.g. autoregressive decoding).
    pub fn cell(&self) -> &GruCell {
        &self.cell
    }

    /// Run over the full sequence starting from a zero state; returns the
    /// stacked hidden states `[B, T, hidden]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let (states, _) = self.forward_with_state(x, None);
        states
    }

    /// Run over the sequence; returns `([B, T, hidden], last_state [B, hidden])`.
    pub fn forward_with_state(&self, x: &Tensor, h0: Option<&Tensor>) -> (Tensor, Tensor) {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "Gru expects [B, T, in]");
        let (b, t) = (shape[0], shape[1]);
        let mut h = match h0 {
            Some(h0) => h0.clone(),
            None => Tensor::constant(Array::zeros(&[b, self.cell.hidden])),
        };
        let mut outs = Vec::with_capacity(t);
        for ti in 0..t {
            let xt = x.slice_axis(1, ti, ti + 1).reshape(&[b, shape[2]]);
            h = self.cell.step(&xt, &h);
            outs.push(h.clone());
        }
        let refs: Vec<&Tensor> = outs.iter().collect();
        (Tensor::stack(&refs, 1), h)
    }
}

impl Module for Gru {
    fn parameters(&self) -> Vec<Tensor> {
        self.cell.parameters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let gru = Gru::new(3, 5, &mut rng);
        let x = Tensor::constant(Array::randn(&[2, 7, 3], &mut rng));
        let (seq, last) = gru.forward_with_state(&x, None);
        assert_eq!(seq.shape(), vec![2, 7, 5]);
        assert_eq!(last.shape(), vec![2, 5]);
        // Final stacked state equals the returned last state.
        let tail = seq.slice_axis(1, 6, 7).reshape(&[2, 5]);
        assert_eq!(tail.value().data(), last.value().data());
    }

    #[test]
    fn zero_input_zero_state_stays_bounded() {
        let mut rng = StdRng::seed_from_u64(0);
        let gru = Gru::new(2, 4, &mut rng);
        let x = Tensor::constant(Array::zeros(&[1, 20, 2]));
        let out = gru.forward(&x);
        assert!(out.value().data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let mut rng = StdRng::seed_from_u64(3);
        let gru = Gru::new(3, 4, &mut rng);
        let x = Tensor::constant(Array::randn(&[2, 5, 3], &mut rng));
        gru.forward(&x).square().sum_all().backward();
        for (i, p) in gru.parameters().iter().enumerate() {
            let g = p.grad().unwrap_or_else(|| panic!("param {i} missing grad"));
            assert!(
                g.data().iter().any(|v| *v != 0.0),
                "param {i} grad all zero"
            );
        }
    }

    #[test]
    fn gru_learns_to_remember_first_input() {
        // Tiny task: output last hidden should regress the first input value.
        let mut rng = StdRng::seed_from_u64(4);
        let gru = Gru::new(1, 6, &mut rng);
        let head = super::super::Linear::new(6, 1, true, &mut rng);
        let xs = Array::randn(&[8, 4, 1], &mut rng);
        let target = {
            let first = xs.slice_axis(1, 0, 1);
            Tensor::constant(first.reshape(&[8, 1]).unwrap())
        };
        let x = Tensor::constant(xs);
        let mut losses = Vec::new();
        for _ in 0..60 {
            let (_, last) = gru.forward_with_state(&x, None);
            let pred = head.forward(&last);
            let loss = pred.sub(&target).square().mean_all();
            losses.push(loss.item());
            loss.backward();
            for p in gru.parameters().into_iter().chain(head.parameters()) {
                p.apply_grad(|v, g| v.add_scaled_assign(g, -0.1));
                p.zero_grad();
            }
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "loss did not halve: {:?} -> {:?}",
            losses[0],
            losses.last().unwrap()
        );
    }
}
