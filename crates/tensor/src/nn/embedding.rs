//! Learnable embedding tables (node embeddings `E^u`/`E^d` and time-slot
//! embeddings `T^D`/`T^W` of Section 4.2).

use super::init::xavier_uniform;
use super::Module;
use crate::tensor::Tensor;
use rand::Rng;

/// A `[count, dim]` table of learnable vectors with index lookup.
pub struct Embedding {
    table: Tensor,
    count: usize,
    dim: usize,
}

impl Embedding {
    /// New randomly initialized table.
    pub fn new<R: Rng>(count: usize, dim: usize, rng: &mut R) -> Self {
        Self {
            table: Tensor::parameter(xavier_uniform(&[count, dim], rng)),
            count,
            dim,
        }
    }

    /// Number of rows.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Vector width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The full table as a tensor `[count, dim]` (for whole-table uses such
    /// as the self-adaptive transition matrix, Eq. 7).
    pub fn weights(&self) -> &Tensor {
        &self.table
    }

    /// Look up rows: returns `[indices.len(), dim]`.
    pub fn lookup(&self, indices: &[usize]) -> Tensor {
        for &i in indices {
            assert!(
                i < self.count,
                "embedding index {i} out of range {}",
                self.count
            );
        }
        self.table.index_select(0, indices)
    }
}

impl Module for Embedding {
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.table.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_shape_and_content() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(5, 3, &mut rng);
        let rows = e.lookup(&[4, 0, 4]);
        assert_eq!(rows.shape(), vec![3, 3]);
        let table = e.weights().value();
        assert_eq!(&rows.value().data()[0..3], &table.data()[12..15]);
        assert_eq!(&rows.value().data()[3..6], &table.data()[0..3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lookup_rejects_bad_index() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(5, 3, &mut rng);
        e.lookup(&[5]);
    }

    #[test]
    fn gradient_scattered_to_looked_up_rows_only() {
        let mut rng = StdRng::seed_from_u64(1);
        let e = Embedding::new(4, 2, &mut rng);
        let rows = e.lookup(&[1, 1]);
        rows.sum_all().backward();
        let g = e.weights().grad().unwrap();
        assert_eq!(g.data(), &[0., 0., 2., 2., 0., 0., 0., 0.]);
    }
}
