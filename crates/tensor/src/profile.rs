//! Optional tape profiler (cargo feature `obsv`).
//!
//! When profiling is armed via [`Tape::start_profiling`], every tensor op
//! records its kind, call count, and cumulative wall time, and every graph
//! node charges its value-buffer size against a live/peak tape-memory
//! account (discharged when the node drops). [`Tape::profile_report`]
//! surfaces the result. Nested ops (a loss calling `sub`/`abs`) each count
//! under their own kind, so cumulative times overlap and do not sum to wall
//! time.
//!
//! All state is thread-local (the tape itself is single-threaded) and the
//! whole API exists without the feature — calls just do nothing and reports
//! come back empty — so downstream code compiles identically either way.

#[cfg(feature = "obsv")]
use std::cell::{Cell, RefCell};
#[cfg(feature = "obsv")]
use std::collections::BTreeMap;
#[cfg(feature = "obsv")]
use std::time::Instant;

/// Per-op-kind aggregate in a [`ProfileReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct OpStat {
    /// Op kind (the tensor method name, or `"backward"` for the sweep).
    pub kind: &'static str,
    /// Number of calls while profiling was active.
    pub calls: u64,
    /// Cumulative wall time across those calls. Pool execution is included:
    /// the caller participates in (and blocks on) its pooled chunks, so a
    /// pooled op's wall time covers the whole parallel kernel.
    pub seconds: f64,
    /// Calls that dispatched at least one kernel to the compute pool.
    pub pooled_calls: u64,
    /// Deliberately-serial reductions (`sum_all`/`mean_all`) performed
    /// during those calls. These never pool — chunked partial sums would
    /// reorder f32 accumulation and break bit-determinism — so this column
    /// keeps their cost attributed instead of silently unattributed.
    pub serial_reductions: u64,
}

/// Snapshot of the profiler, from [`Tape::profile_report`]. Empty (no ops,
/// zero bytes) when the `obsv` feature is off or profiling never ran.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileReport {
    /// Per-op aggregates, sorted by kind.
    pub ops: Vec<OpStat>,
    /// Graph nodes created while profiling was active.
    pub nodes_created: u64,
    /// Value-buffer bytes currently held by profiled live nodes.
    pub live_tape_bytes: usize,
    /// High-water mark of [`Self::live_tape_bytes`].
    pub peak_tape_bytes: usize,
}

impl ProfileReport {
    /// Render as an aligned text table, ops sorted by cumulative time.
    pub fn format_table(&self) -> String {
        let mut rows = self.ops.clone();
        rows.sort_by(|a, b| b.seconds.total_cmp(&a.seconds));
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>10} {:>12} {:>8} {:>8}\n",
            "op", "calls", "seconds", "pooled", "serial"
        ));
        for r in &rows {
            out.push_str(&format!(
                "{:<16} {:>10} {:>12.6} {:>8} {:>8}\n",
                r.kind, r.calls, r.seconds, r.pooled_calls, r.serial_reductions
            ));
        }
        out.push_str(&format!(
            "nodes created: {}   tape bytes: {} live / {} peak\n",
            self.nodes_created, self.live_tape_bytes, self.peak_tape_bytes
        ));
        out
    }
}

/// Handle to the (thread-local) autograd tape's profiler. A unit struct:
/// all methods are associated functions so call sites read
/// `Tape::start_profiling()`.
pub struct Tape;

#[cfg(feature = "obsv")]
#[derive(Default)]
struct ProfState {
    // kind -> (calls, nanos, pooled_calls, serial_reductions)
    per_op: BTreeMap<&'static str, (u64, u64, u64, u64)>,
    nodes_created: u64,
    live_bytes: usize,
    peak_bytes: usize,
}

#[cfg(feature = "obsv")]
thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static STATE: RefCell<ProfState> = RefCell::new(ProfState::default());
    /// Monotonic count of pool dispatches from this thread; `OpScope`
    /// diffs it to attribute pool usage to the op that was open.
    static POOL_DISPATCHES: Cell<u64> = const { Cell::new(0) };
    /// Monotonic count of deliberately-serial reductions from this thread;
    /// `OpScope` diffs it, mirroring [`POOL_DISPATCHES`].
    static SERIAL_REDUCTIONS: Cell<u64> = const { Cell::new(0) };
}

impl Tape {
    /// Reset counters and start profiling ops on this thread.
    pub fn start_profiling() {
        #[cfg(feature = "obsv")]
        {
            Self::reset_profile();
            ACTIVE.with(|a| a.set(true));
        }
    }

    /// Stop profiling; accumulated counters remain readable.
    pub fn stop_profiling() {
        #[cfg(feature = "obsv")]
        ACTIVE.with(|a| a.set(false));
    }

    /// Whether profiling is currently active on this thread. Always `false`
    /// without the `obsv` feature.
    pub fn is_profiling() -> bool {
        #[cfg(feature = "obsv")]
        {
            ACTIVE.with(Cell::get)
        }
        #[cfg(not(feature = "obsv"))]
        {
            false
        }
    }

    /// Zero all counters (does not change whether profiling is active).
    pub fn reset_profile() {
        #[cfg(feature = "obsv")]
        STATE.with(|s| *s.borrow_mut() = ProfState::default());
    }

    /// Snapshot the profiler state. Empty without the `obsv` feature.
    pub fn profile_report() -> ProfileReport {
        #[cfg(feature = "obsv")]
        {
            STATE.with(|s| {
                let s = s.borrow();
                ProfileReport {
                    ops: s
                        .per_op
                        .iter()
                        .map(|(kind, (calls, nanos, pooled, serial))| OpStat {
                            kind,
                            calls: *calls,
                            seconds: *nanos as f64 * 1e-9,
                            pooled_calls: *pooled,
                            serial_reductions: *serial,
                        })
                        .collect(),
                    nodes_created: s.nodes_created,
                    live_tape_bytes: s.live_bytes,
                    peak_tape_bytes: s.peak_bytes,
                }
            })
        }
        #[cfg(not(feature = "obsv"))]
        {
            ProfileReport::default()
        }
    }
}

/// RAII timing scope for one op call; see [`op_scope`].
pub(crate) struct OpScope {
    #[cfg(feature = "obsv")]
    timed: Option<(&'static str, Instant, u64, u64)>,
}

/// Open a timing scope for op `kind`. Ops call this first thing; the scope
/// closes (and records) when the returned guard drops at the end of the op.
/// Free when profiling is inactive or the feature is off.
#[inline]
pub(crate) fn op_scope(kind: &'static str) -> OpScope {
    #[cfg(feature = "obsv")]
    {
        OpScope {
            timed: ACTIVE.with(Cell::get).then(|| {
                (
                    kind,
                    Instant::now(),
                    POOL_DISPATCHES.with(Cell::get),
                    SERIAL_REDUCTIONS.with(Cell::get),
                )
            }),
        }
    }
    #[cfg(not(feature = "obsv"))]
    {
        let _ = kind;
        OpScope {}
    }
}

/// Called by the compute pool on every pooled dispatch so `OpScope` can
/// attribute pool usage to the op whose scope is open. No-op without the
/// `obsv` feature.
#[inline]
pub(crate) fn note_pooled_dispatch() {
    #[cfg(feature = "obsv")]
    POOL_DISPATCHES.with(|c| c.set(c.get() + 1));
}

/// Called by reductions that deliberately stay serial (`sum_all` and
/// friends) so `OpScope` can surface them in their own report column.
/// No-op without the `obsv` feature.
#[inline]
pub(crate) fn note_serial_reduction() {
    #[cfg(feature = "obsv")]
    SERIAL_REDUCTIONS.with(|c| c.set(c.get() + 1));
}

#[cfg(feature = "obsv")]
impl Drop for OpScope {
    fn drop(&mut self) {
        let Some((kind, start, dispatches_at_open, serial_at_open)) = self.timed.take() else {
            return;
        };
        let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let pooled = POOL_DISPATCHES.with(Cell::get) > dispatches_at_open;
        let serial = SERIAL_REDUCTIONS
            .with(Cell::get)
            .saturating_sub(serial_at_open);
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            let entry = s.per_op.entry(kind).or_insert((0, 0, 0, 0));
            entry.0 += 1;
            entry.1 = entry.1.saturating_add(nanos);
            entry.2 += u64::from(pooled);
            entry.3 += serial;
        });
    }
}

/// Charge `bytes` of node value storage to the live/peak account. Returns
/// the amount actually charged (0 when profiling is inactive) so the node
/// can discharge exactly that much on drop.
#[cfg(feature = "obsv")]
pub(crate) fn charge_bytes(bytes: usize) -> usize {
    if !ACTIVE.with(Cell::get) {
        return 0;
    }
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        s.nodes_created += 1;
        s.live_bytes = s.live_bytes.saturating_add(bytes);
        s.peak_bytes = s.peak_bytes.max(s.live_bytes);
    });
    bytes
}

/// Release a node's previously charged bytes.
#[cfg(feature = "obsv")]
pub(crate) fn discharge_bytes(bytes: usize) {
    if bytes == 0 {
        return;
    }
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        s.live_bytes = s.live_bytes.saturating_sub(bytes);
    });
}
