//! Test utilities: numeric gradient checking.
//!
//! Exposed publicly so downstream crates (models, baselines) can gradcheck
//! their composite layers in their own test suites.

use crate::array::Array;
use crate::tensor::Tensor;
use rand::Rng;

/// Verify analytic gradients of `f` against central finite differences.
///
/// `f` maps a slice of parameter tensors to a scalar tensor. One fresh set of
/// random inputs per call; panics with a descriptive message on mismatch.
/// `tol` is the max allowed absolute-or-relative deviation (f32 numerics
/// usually need 1e-2 with the default epsilon).
pub fn gradcheck<R: Rng>(
    f: impl Fn(&[Tensor]) -> Tensor,
    shapes: &[&[usize]],
    rng: &mut R,
    tol: f32,
) {
    let eps = 1e-2f32;
    let inputs: Vec<Tensor> = shapes
        .iter()
        .map(|s| Tensor::parameter(Array::randn(s, rng)))
        .collect();

    let out = f(&inputs);
    assert_eq!(out.numel(), 1, "gradcheck target must be scalar");
    out.backward();

    for (pi, input) in inputs.iter().enumerate() {
        let analytic = input.grad().unwrap_or_else(|| Array::zeros(&input.shape()));
        let base = input.value();
        for ei in 0..base.numel() {
            let mut plus = base.clone();
            plus.data_mut()[ei] += eps;
            let mut minus = base.clone();
            minus.data_mut()[ei] -= eps;

            let fresh = |v: Array, at: usize| -> f32 {
                let probe: Vec<Tensor> = inputs
                    .iter()
                    .enumerate()
                    .map(|(i, inp)| {
                        if i == at {
                            Tensor::parameter(v.clone())
                        } else {
                            Tensor::parameter(inp.value())
                        }
                    })
                    .collect();
                f(&probe).item()
            };

            let numeric = (fresh(plus, pi) - fresh(minus, pi)) / (2.0 * eps);
            let a = analytic.data()[ei];
            let denom = 1.0f32.max(a.abs()).max(numeric.abs());
            let err = (a - numeric).abs() / denom;
            assert!(
                err <= tol,
                "gradcheck failed: input {pi} elem {ei}: analytic {a} vs numeric {numeric} (rel err {err})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gradcheck_passes_on_simple_function() {
        let mut rng = StdRng::seed_from_u64(0);
        gradcheck(|x| x[0].square().sum_all(), &[&[3]], &mut rng, 1e-2);
    }

    #[test]
    #[should_panic(expected = "gradcheck failed")]
    fn gradcheck_catches_wrong_gradient() {
        let mut rng = StdRng::seed_from_u64(0);
        // Build an op with a deliberately wrong backward: y = 2x forward but
        // claims dy/dx = 10.
        gradcheck(
            |x| {
                let v = x[0].value().scale(2.0);
                Tensor::from_op(
                    v,
                    vec![x[0].clone()],
                    Box::new(|g| vec![Some(g.scale(10.0))]),
                )
                .sum_all()
            },
            &[&[2]],
            &mut rng,
            1e-2,
        );
    }
}
