//! Test utilities: numeric gradient checking.
//!
//! Exposed publicly so downstream crates (models, baselines) can gradcheck
//! their composite layers in their own test suites.

use crate::array::Array;
use crate::tensor::Tensor;
use rand::Rng;

/// Verify analytic gradients of `f` against central finite differences.
///
/// `f` maps a slice of parameter tensors to a scalar tensor. One fresh set of
/// random inputs per call; panics with a descriptive message on mismatch.
/// `tol` is the max allowed absolute-or-relative deviation (f32 numerics
/// usually need 1e-2 with the default epsilon).
pub fn gradcheck<R: Rng>(
    f: impl Fn(&[Tensor]) -> Tensor,
    shapes: &[&[usize]],
    rng: &mut R,
    tol: f32,
) {
    let inputs: Vec<Array> = shapes.iter().map(|s| Array::randn(s, rng)).collect();
    gradcheck_on(f, &inputs, tol);
}

/// [`gradcheck`] with caller-chosen input values instead of fresh random
/// ones — needed for ops with kinks or domain restrictions (`relu`, `abs`,
/// `sqrt`), where the probe points must sit safely away from the
/// non-differentiable locus.
pub fn gradcheck_on(f: impl Fn(&[Tensor]) -> Tensor, input_values: &[Array], tol: f32) {
    let eps = 1e-2f32;
    let inputs: Vec<Tensor> = input_values
        .iter()
        .map(|a| Tensor::parameter(a.clone()))
        .collect();

    let out = f(&inputs);
    assert_eq!(out.numel(), 1, "gradcheck target must be scalar");
    out.backward();

    for (pi, input) in inputs.iter().enumerate() {
        let analytic = input.grad().unwrap_or_else(|| Array::zeros(&input.shape()));
        let base = input.value();
        for ei in 0..base.numel() {
            let mut plus = base.clone();
            plus.data_mut()[ei] += eps;
            let mut minus = base.clone();
            minus.data_mut()[ei] -= eps;

            let fresh = |v: Array, at: usize| -> f32 {
                let probe: Vec<Tensor> = inputs
                    .iter()
                    .enumerate()
                    .map(|(i, inp)| {
                        if i == at {
                            Tensor::parameter(v.clone())
                        } else {
                            Tensor::parameter(inp.value())
                        }
                    })
                    .collect();
                f(&probe).item()
            };

            let numeric = (fresh(plus, pi) - fresh(minus, pi)) / (2.0 * eps);
            let a = analytic.data()[ei];
            let denom = 1.0f32.max(a.abs()).max(numeric.abs());
            let err = (a - numeric).abs() / denom;
            assert!(
                err <= tol,
                "gradcheck failed: input {pi} elem {ei}: analytic {a} vs numeric {numeric} (rel err {err})"
            );
        }
    }
}

/// Gradcheck for stateful modules (nn layers, whole models): verifies the
/// analytic gradient of `loss` with respect to each tensor in `parameters`
/// against central finite differences, probing the first
/// `max_elems_per_param` elements of every parameter (exhaustive checking of
/// large weight matrices is too slow for CI).
///
/// `loss` must be deterministic across calls (run the module in evaluation
/// mode or with a reseeded rng) and must read the *current* values of
/// `parameters` on every invocation — true for any `Module` built on
/// [`Tensor::parameter`] leaves.
pub fn gradcheck_module(
    loss: impl Fn() -> Tensor,
    parameters: &[Tensor],
    max_elems_per_param: usize,
    tol: f32,
) {
    gradcheck_module_with_eps(loss, parameters, max_elems_per_param, 1e-2, tol);
}

/// [`gradcheck_module`] with a caller-chosen step size. Deep models need a
/// smaller `eps` than the 1e-2 default: with thousands of relu
/// pre-activations downstream of each weight, a large perturbation almost
/// surely flips some unit's sign and the central difference then measures a
/// secant across the kink rather than the local slope.
pub fn gradcheck_module_with_eps(
    loss: impl Fn() -> Tensor,
    parameters: &[Tensor],
    max_elems_per_param: usize,
    eps: f32,
    tol: f32,
) {
    for p in parameters {
        p.zero_grad();
    }
    let out = loss();
    assert_eq!(out.numel(), 1, "gradcheck_module target must be scalar");
    out.backward();

    for (pi, param) in parameters.iter().enumerate() {
        let analytic = param.grad().unwrap_or_else(|| Array::zeros(&param.shape()));
        let base = param.value();
        let probes = base.numel().min(max_elems_per_param);
        for ei in 0..probes {
            let mut plus = base.clone();
            plus.data_mut()[ei] += eps;
            param.set_value(plus);
            let f_plus = loss().item();
            let mut minus = base.clone();
            minus.data_mut()[ei] -= eps;
            param.set_value(minus);
            let f_minus = loss().item();
            param.set_value(base.clone());

            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let a = analytic.data()[ei];
            let denom = 1.0f32.max(a.abs()).max(numeric.abs());
            let err = (a - numeric).abs() / denom;
            assert!(
                err <= tol,
                "gradcheck_module failed: parameter {pi} elem {ei}: analytic {a} vs numeric {numeric} (rel err {err})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gradcheck_passes_on_simple_function() {
        let mut rng = StdRng::seed_from_u64(0);
        gradcheck(|x| x[0].square().sum_all(), &[&[3]], &mut rng, 1e-2);
    }

    #[test]
    #[should_panic(expected = "gradcheck failed")]
    fn gradcheck_catches_wrong_gradient() {
        let mut rng = StdRng::seed_from_u64(0);
        // Build an op with a deliberately wrong backward: y = 2x forward but
        // claims dy/dx = 10.
        gradcheck(
            |x| {
                let v = x[0].value().scale(2.0);
                Tensor::from_op(
                    v,
                    vec![x[0].clone()],
                    Box::new(|g| vec![Some(g.scale(10.0))]),
                )
                .sum_all()
            },
            &[&[2]],
            &mut rng,
            1e-2,
        );
    }
}
