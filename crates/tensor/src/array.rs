//! Dense row-major `f32` N-dimensional arrays: the eager kernel layer under
//! the autograd [`crate::Tensor`].
//!
//! Arrays are always contiguous. Broadcasting follows NumPy semantics.
//! Hot-path binary ops have a fast path for identical shapes; `matmul` uses a
//! cache-friendly ikj loop and splits rows across threads (std scoped
//! threads) for large problems.

use crate::error::TensorError;
use crate::shape::{broadcast_shapes, broadcast_strides, check_axis, numel, ravel, strides_for};
use rand::distributions::Distribution;
use rand::Rng;
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Minimum `m * n * k` product before `matmul` spreads rows across threads.
const PAR_MATMUL_THRESHOLD: usize = 64 * 64 * 64;

/// A dense, contiguous, row-major array of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Array {
    shape: Vec<usize>,
    data: Vec<f32>,
}

#[derive(Serialize, Deserialize)]
struct ArrayRepr {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Serialize for Array {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        ArrayRepr {
            shape: self.shape.clone(),
            data: self.data.clone(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Array {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = ArrayRepr::deserialize(deserializer)?;
        Array::from_vec(&repr.shape, repr.data).map_err(D::Error::custom)
    }
}

impl std::fmt::Debug for Array {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        write!(
            f,
            "Array{{shape: {:?}, data: {:?}{}}}",
            self.shape,
            preview,
            if self.data.len() > 8 { ", ..." } else { "" }
        )
    }
}

impl Array {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Create an array from a flat buffer; fails if lengths disagree.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self, TensorError> {
        if numel(shape) != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                shape: shape.to_vec(),
                len: data.len(),
            });
        }
        Ok(Self {
            shape: shape.to_vec(),
            data,
        })
    }

    /// All-zeros array.
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; numel(shape)],
        }
    }

    /// All-ones array.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Array filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self {
            shape: shape.to_vec(),
            data: vec![value; numel(shape)],
        }
    }

    /// Rank-0 scalar.
    pub fn scalar(value: f32) -> Self {
        Self {
            shape: vec![],
            data: vec![value],
        }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut a = Self::zeros(&[n, n]);
        for i in 0..n {
            a.data[i * n + i] = 1.0;
        }
        a
    }

    /// `[0, 1, ..., n-1]` as a 1-D array.
    pub fn arange(n: usize) -> Self {
        Self {
            shape: vec![n],
            data: (0..n).map(|i| i as f32).collect(),
        }
    }

    /// Standard-normal samples (Box–Muller via `rand`).
    pub fn randn<R: Rng>(shape: &[usize], rng: &mut R) -> Self {
        let dist = StandardNormal;
        let data = (0..numel(shape)).map(|_| dist.sample(rng)).collect();
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Uniform samples in `[lo, hi)`.
    pub fn rand_uniform<R: Rng>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let data = (0..numel(shape)).map(|_| rng.gen_range(lo..hi)).collect();
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Dimensions of the array.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Flat read-only view of the contents, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the contents, row-major.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the array, returning its flat buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Element at multi-dimensional coordinates. Panics if out of range.
    pub fn at(&self, coords: &[usize]) -> f32 {
        debug_assert_eq!(coords.len(), self.rank());
        let strides = strides_for(&self.shape);
        self.data[ravel(coords, &strides)]
    }

    /// Set element at multi-dimensional coordinates.
    pub fn set(&mut self, coords: &[usize], value: f32) {
        let strides = strides_for(&self.shape);
        let idx = ravel(coords, &strides);
        self.data[idx] = value;
    }

    /// Value of a single-element array.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires exactly one element");
        self.data[0]
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Reinterpret with a new shape of identical element count.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self, TensorError> {
        if numel(shape) != self.numel() {
            return Err(TensorError::ShapeDataMismatch {
                shape: shape.to_vec(),
                len: self.numel(),
            });
        }
        Ok(Self {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Generalized transpose: `perm` is a permutation of axis indices.
    pub fn permute(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.rank(), "permute: wrong length");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "permute: invalid permutation");
            seen[p] = true;
        }
        let new_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let old_strides = strides_for(&self.shape);
        let permuted_strides: Vec<usize> = perm.iter().map(|&p| old_strides[p]).collect();
        let mut out = Self::zeros(&new_shape);
        // Iterate output row-major; gather from source via permuted strides.
        let n = out.numel();
        let mut coords = vec![0usize; new_shape.len()];
        for i in 0..n {
            let src = ravel(&coords, &permuted_strides);
            out.data[i] = self.data[src];
            // increment coords
            for ax in (0..new_shape.len()).rev() {
                coords[ax] += 1;
                if coords[ax] < new_shape[ax] {
                    break;
                }
                coords[ax] = 0;
            }
        }
        out
    }

    /// Swap the last two axes (matrix transpose for rank >= 2).
    pub fn transpose(&self) -> Self {
        assert!(self.rank() >= 2, "transpose requires rank >= 2");
        let mut perm: Vec<usize> = (0..self.rank()).collect();
        let r = self.rank();
        perm.swap(r - 1, r - 2);
        self.permute(&perm)
    }

    /// Materialize a broadcast of `self` to `target` shape.
    pub fn broadcast_to(&self, target: &[usize]) -> Result<Self, TensorError> {
        let merged = broadcast_shapes(&self.shape, target)?;
        if merged != target {
            return Err(TensorError::ShapeMismatch {
                op: "broadcast_to",
                lhs: self.shape.clone(),
                rhs: target.to_vec(),
            });
        }
        if self.shape == target {
            return Ok(self.clone());
        }
        let bstrides = broadcast_strides(&self.shape, target);
        let mut out = Self::zeros(target);
        let mut coords = vec![0usize; target.len()];
        for i in 0..out.numel() {
            out.data[i] = self.data[ravel(&coords, &bstrides)];
            for ax in (0..target.len()).rev() {
                coords[ax] += 1;
                if coords[ax] < target[ax] {
                    break;
                }
                coords[ax] = 0;
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Elementwise
    // ------------------------------------------------------------------

    /// Apply `f` to every element, producing a new array.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Apply `f` in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Broadcasting binary operation.
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        if self.shape == other.shape {
            let data = self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect();
            return Self {
                shape: self.shape.clone(),
                data,
            };
        }
        let out_shape = broadcast_shapes(&self.shape, &other.shape)
            .unwrap_or_else(|e| crate::error::violation(format_args!("elementwise op: {e}")));
        let sa = broadcast_strides(&self.shape, &out_shape);
        let sb = broadcast_strides(&other.shape, &out_shape);
        let mut out = Self::zeros(&out_shape);
        let mut coords = vec![0usize; out_shape.len()];
        for i in 0..out.numel() {
            out.data[i] = f(
                self.data[ravel(&coords, &sa)],
                other.data[ravel(&coords, &sb)],
            );
            for ax in (0..out_shape.len()).rev() {
                coords[ax] += 1;
                if coords[ax] < out_shape[ax] {
                    break;
                }
                coords[ax] = 0;
            }
        }
        out
    }

    /// Elementwise (broadcasting) addition.
    pub fn add(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise (broadcasting) subtraction.
    pub fn sub(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (broadcasting) multiplication.
    pub fn mul(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a * b)
    }

    /// Elementwise (broadcasting) division.
    pub fn div(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a / b)
    }

    /// Accumulate `other * scale` into `self`; shapes must match exactly.
    pub fn add_scaled_assign(&mut self, other: &Self, scale: f32) {
        assert_eq!(self.shape, other.shape, "add_scaled_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
    }

    /// Multiply every element by `s`.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|v| v * s)
    }

    /// Add `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|v| v + s)
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum_all(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty arrays).
    pub fn mean_all(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum_all() / self.data.len() as f32
        }
    }

    /// Sum along `axis`. If `keepdim`, the axis remains with size 1.
    pub fn sum_axis(&self, axis: usize, keepdim: bool) -> Self {
        crate::error::require(check_axis(axis, self.rank()), "sum_axis");
        let mut out_shape = self.shape.clone();
        out_shape[axis] = 1;
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut out = Self::zeros(&out_shape);
        for o in 0..outer {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    out.data[obase + i] += self.data[base + i];
                }
            }
        }
        if !keepdim {
            out.shape.remove(axis);
        }
        out
    }

    /// Mean along `axis`.
    pub fn mean_axis(&self, axis: usize, keepdim: bool) -> Self {
        let n = self.shape[axis].max(1) as f32;
        self.sum_axis(axis, keepdim).scale(1.0 / n)
    }

    /// Maximum along `axis` (keepdim).
    pub fn max_axis_keepdim(&self, axis: usize) -> Self {
        crate::error::require(check_axis(axis, self.rank()), "max_axis");
        let mut out_shape = self.shape.clone();
        out_shape[axis] = 1;
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut out = Self::full(&out_shape, f32::NEG_INFINITY);
        for o in 0..outer {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    let v = self.data[base + i];
                    if v > out.data[obase + i] {
                        out.data[obase + i] = v;
                    }
                }
            }
        }
        out
    }

    /// Numerically stable softmax along `axis`.
    pub fn softmax(&self, axis: usize) -> Self {
        let max = self.max_axis_keepdim(axis);
        let shifted = self.zip(&max, |a, m| (a - m).exp());
        let denom = shifted.sum_axis(axis, true);
        shifted.zip(&denom, |e, d| if d > 0.0 { e / d } else { 0.0 })
    }

    /// Reduce `self` (already shaped like `output`) back to `input_shape` by
    /// summing over broadcast axes. Used to back-propagate through broadcasts.
    pub fn reduce_to_shape(&self, input_shape: &[usize]) -> Self {
        if self.shape == input_shape {
            return self.clone();
        }
        let (leading, repeated) = crate::shape::reduction_axes(input_shape, &self.shape);
        let mut cur = self.clone();
        // Sum away leading axes first (axis 0 repeatedly).
        for _ in 0..leading {
            cur = cur.sum_axis(0, false);
        }
        // Then sum repeated axes with keepdim to preserve positions.
        for &ax in &repeated {
            cur = cur.sum_axis(ax - leading, true);
        }
        debug_assert_eq!(cur.shape(), input_shape);
        cur
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix multiplication.
    ///
    /// Supports `[m,k] x [k,n]`, batched `[b,m,k] x [b,k,n]`, and mixed
    /// `[b,m,k] x [k,n]` / `[m,k] x [b,k,n]` (the rank-2 side is broadcast
    /// across the batch).
    pub fn matmul(&self, other: &Self) -> Self {
        match (self.rank(), other.rank()) {
            (2, 2) => self.matmul2(other),
            (3, 2) => {
                let b = self.shape[0];
                let (m, k) = (self.shape[1], self.shape[2]);
                assert_eq!(
                    k, other.shape[0],
                    "matmul: inner dims {k} vs {}",
                    other.shape[0]
                );
                let n = other.shape[1];
                let mut out = Self::zeros(&[b, m, n]);
                for bi in 0..b {
                    matmul_kernel(
                        &self.data[bi * m * k..(bi + 1) * m * k],
                        &other.data,
                        &mut out.data[bi * m * n..(bi + 1) * m * n],
                        m,
                        k,
                        n,
                    );
                }
                out
            }
            (2, 3) => {
                let b = other.shape[0];
                let (m, k) = (self.shape[0], self.shape[1]);
                assert_eq!(
                    k, other.shape[1],
                    "matmul: inner dims {k} vs {}",
                    other.shape[1]
                );
                let n = other.shape[2];
                let mut out = Self::zeros(&[b, m, n]);
                for bi in 0..b {
                    matmul_kernel(
                        &self.data,
                        &other.data[bi * k * n..(bi + 1) * k * n],
                        &mut out.data[bi * m * n..(bi + 1) * m * n],
                        m,
                        k,
                        n,
                    );
                }
                out
            }
            (3, 3) => {
                assert_eq!(self.shape[0], other.shape[0], "matmul: batch mismatch");
                let b = self.shape[0];
                let (m, k) = (self.shape[1], self.shape[2]);
                assert_eq!(
                    k, other.shape[1],
                    "matmul: inner dims {k} vs {}",
                    other.shape[1]
                );
                let n = other.shape[2];
                let mut out = Self::zeros(&[b, m, n]);
                for bi in 0..b {
                    matmul_kernel(
                        &self.data[bi * m * k..(bi + 1) * m * k],
                        &other.data[bi * k * n..(bi + 1) * k * n],
                        &mut out.data[bi * m * n..(bi + 1) * m * n],
                        m,
                        k,
                        n,
                    );
                }
                out
            }
            (a, b) => {
                crate::error::violation(format_args!("matmul: unsupported ranks {a} and {b}"))
            }
        }
    }

    fn matmul2(&self, other: &Self) -> Self {
        let (m, k) = (self.shape[0], self.shape[1]);
        assert_eq!(
            k, other.shape[0],
            "matmul: inner dims {k} vs {}",
            other.shape[0]
        );
        let n = other.shape[1];
        let mut out = Self::zeros(&[m, n]);
        if m * n * k >= PAR_MATMUL_THRESHOLD && m >= 8 {
            let threads = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(8)
                .min(m);
            let rows_per = m.div_ceil(threads);
            let a = &self.data;
            let b = &other.data;
            std::thread::scope(|s| {
                for (ti, chunk) in out.data.chunks_mut(rows_per * n).enumerate() {
                    let r0 = ti * rows_per;
                    let rows = chunk.len() / n;
                    s.spawn(move || {
                        matmul_kernel(&a[r0 * k..(r0 + rows) * k], b, chunk, rows, k, n);
                    });
                }
            });
        } else {
            matmul_kernel(&self.data, &other.data, &mut out.data, m, k, n);
        }
        out
    }

    // ------------------------------------------------------------------
    // Combination / slicing
    // ------------------------------------------------------------------

    /// Concatenate arrays along `axis`. All other dimensions must agree.
    pub fn concat(arrays: &[&Self], axis: usize) -> Result<Self, TensorError> {
        if arrays.is_empty() {
            return Err(TensorError::Empty("concat"));
        }
        let rank = arrays[0].rank();
        check_axis(axis, rank)?;
        for a in arrays {
            if a.rank() != rank {
                return Err(TensorError::ShapeMismatch {
                    op: "concat",
                    lhs: arrays[0].shape.clone(),
                    rhs: a.shape.clone(),
                });
            }
            for d in 0..rank {
                if d != axis && a.shape[d] != arrays[0].shape[d] {
                    return Err(TensorError::ShapeMismatch {
                        op: "concat",
                        lhs: arrays[0].shape.clone(),
                        rhs: a.shape.clone(),
                    });
                }
            }
        }
        let mut out_shape = arrays[0].shape.clone();
        out_shape[axis] = arrays.iter().map(|a| a.shape[axis]).sum();
        let outer: usize = out_shape[..axis].iter().product();
        let inner: usize = out_shape[axis + 1..].iter().product();
        let mut data = Vec::with_capacity(numel(&out_shape));
        for o in 0..outer {
            for a in arrays {
                let mid = a.shape[axis];
                let start = o * mid * inner;
                data.extend_from_slice(&a.data[start..start + mid * inner]);
            }
        }
        Ok(Self {
            shape: out_shape,
            data,
        })
    }

    /// Stack arrays of identical shape along a new leading axis at `axis`.
    pub fn stack(arrays: &[&Self], axis: usize) -> Result<Self, TensorError> {
        if arrays.is_empty() {
            return Err(TensorError::Empty("stack"));
        }
        let expanded: Vec<Self> = arrays
            .iter()
            .map(|a| {
                let mut s = a.shape.clone();
                s.insert(axis, 1);
                crate::error::require(a.reshape(&s), "stack")
            })
            .collect();
        let refs: Vec<&Self> = expanded.iter().collect();
        Self::concat(&refs, axis)
    }

    /// Slice `[start, end)` along `axis`.
    pub fn slice_axis(&self, axis: usize, start: usize, end: usize) -> Self {
        crate::error::require(check_axis(axis, self.rank()), "slice_axis");
        assert!(
            start <= end && end <= self.shape[axis],
            "slice_axis: range {start}..{end} out of bounds for dim {}",
            self.shape[axis]
        );
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut out_shape = self.shape.clone();
        out_shape[axis] = end - start;
        let mut data = Vec::with_capacity(numel(&out_shape));
        for o in 0..outer {
            let base = (o * mid + start) * inner;
            data.extend_from_slice(&self.data[base..base + (end - start) * inner]);
        }
        Self {
            shape: out_shape,
            data,
        }
    }

    /// Write `src` into the `[start, start+len)` range of `axis` (len from src).
    pub fn assign_slice_axis(&mut self, axis: usize, start: usize, src: &Self) {
        assert_eq!(self.rank(), src.rank(), "assign_slice: rank mismatch");
        for d in 0..self.rank() {
            if d != axis {
                assert_eq!(
                    self.shape[d], src.shape[d],
                    "assign_slice: dim {d} mismatch"
                );
            }
        }
        let len = src.shape[axis];
        assert!(
            start + len <= self.shape[axis],
            "assign_slice: out of range"
        );
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        for o in 0..outer {
            let dst_base = (o * mid + start) * inner;
            let src_base = o * len * inner;
            self.data[dst_base..dst_base + len * inner]
                .copy_from_slice(&src.data[src_base..src_base + len * inner]);
        }
    }

    /// Gather rows along `axis` by index.
    pub fn index_select(&self, axis: usize, indices: &[usize]) -> Self {
        crate::error::require(check_axis(axis, self.rank()), "index_select");
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut out_shape = self.shape.clone();
        out_shape[axis] = indices.len();
        let mut data = Vec::with_capacity(numel(&out_shape));
        for o in 0..outer {
            for &idx in indices {
                assert!(idx < mid, "index_select: index {idx} out of range {mid}");
                let base = (o * mid + idx) * inner;
                data.extend_from_slice(&self.data[base..base + inner]);
            }
        }
        Self {
            shape: out_shape,
            data,
        }
    }

    /// Scatter-add: the inverse of `index_select` for gradients. For each
    /// position `j` in `indices`, adds the `j`-th slice of `src` into the
    /// `indices[j]`-th slice of `self` along `axis`.
    pub fn index_add(&mut self, axis: usize, indices: &[usize], src: &Self) {
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        assert_eq!(src.shape[axis], indices.len(), "index_add: count mismatch");
        for o in 0..outer {
            for (j, &idx) in indices.iter().enumerate() {
                assert!(idx < mid, "index_add: index out of range");
                let dst = (o * mid + idx) * inner;
                let s = (o * indices.len() + j) * inner;
                for i in 0..inner {
                    self.data[dst + i] += src.data[s + i];
                }
            }
        }
    }
}

/// `out[m,n] += a[m,k] * b[k,n]` with an ikj loop ordering (out assumed zeroed).
fn matmul_kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (ov, &bv) in out_row.iter_mut().zip(b_row) {
                *ov += av * bv;
            }
        }
    }
}

/// Standard normal distribution via Box–Muller (avoids rand_distr dependency).
struct StandardNormal;

impl Distribution<f32> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        loop {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let v = r * (2.0 * std::f32::consts::PI * u2).cos();
            if v.is_finite() {
                return v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arr(shape: &[usize], data: &[f32]) -> Array {
        Array::from_vec(shape, data.to_vec()).unwrap()
    }

    #[test]
    fn constructors() {
        assert_eq!(Array::zeros(&[2, 3]).numel(), 6);
        assert_eq!(Array::ones(&[2]).data(), &[1.0, 1.0]);
        assert_eq!(Array::full(&[2], 3.5).data(), &[3.5, 3.5]);
        assert_eq!(Array::scalar(2.0).item(), 2.0);
        assert_eq!(Array::eye(2).data(), &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(Array::arange(3).data(), &[0.0, 1.0, 2.0]);
        assert!(Array::from_vec(&[2, 2], vec![1.0]).is_err());
    }

    #[test]
    fn randn_statistics() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Array::randn(&[10_000], &mut rng);
        let mean = a.mean_all();
        let var = a.map(|v| v * v).mean_all() - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn elementwise_broadcast() {
        let a = arr(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = arr(&[3], &[10., 20., 30.]);
        assert_eq!(a.add(&b).data(), &[11., 22., 33., 14., 25., 36.]);
        let c = arr(&[2, 1], &[1., 2.]);
        assert_eq!(a.mul(&c).data(), &[1., 2., 3., 8., 10., 12.]);
        assert_eq!(a.sub(&a).sum_all(), 0.0);
        assert_eq!(a.div(&a).sum_all(), 6.0);
        assert_eq!(a.scale(2.0).data()[5], 12.0);
        assert_eq!(a.add_scalar(1.0).data()[0], 2.0);
    }

    #[test]
    #[should_panic(expected = "elementwise op")]
    fn elementwise_incompatible_panics() {
        let a = arr(&[2, 3], &[0.; 6]);
        let b = arr(&[2, 4], &[0.; 8]);
        let _ = a.add(&b);
    }

    #[test]
    fn reductions() {
        let a = arr(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.sum_all(), 21.0);
        assert_eq!(a.mean_all(), 3.5);
        assert_eq!(a.sum_axis(0, false).data(), &[5., 7., 9.]);
        assert_eq!(a.sum_axis(1, false).data(), &[6., 15.]);
        assert_eq!(a.sum_axis(1, true).shape(), &[2, 1]);
        assert_eq!(a.mean_axis(1, false).data(), &[2., 5.]);
        assert_eq!(a.max_axis_keepdim(1).data(), &[3., 6.]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = arr(&[2, 3], &[1., 2., 3., 1000., 1000., 1000.]);
        let s = a.softmax(1);
        let sums = s.sum_axis(1, false);
        assert!((sums.data()[0] - 1.0).abs() < 1e-6);
        assert!((sums.data()[1] - 1.0).abs() < 1e-6);
        assert!(!s.has_non_finite(), "softmax must be stable for big inputs");
    }

    #[test]
    fn matmul_2d_known_values() {
        let a = arr(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = arr(&[3, 2], &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_batched_and_mixed() {
        let a = arr(&[2, 2, 2], &[1., 0., 0., 1., 2., 0., 0., 2.]);
        let b = arr(&[2, 2], &[1., 2., 3., 4.]);
        let c = a.matmul(&b); // [2,2,2] x [2,2]
        assert_eq!(c.shape(), &[2, 2, 2]);
        assert_eq!(&c.data()[..4], &[1., 2., 3., 4.]);
        assert_eq!(&c.data()[4..], &[2., 4., 6., 8.]);

        let d = b.matmul(&a); // [2,2] x [2,2,2]
        assert_eq!(d.shape(), &[2, 2, 2]);
        assert_eq!(&d.data()[..4], &[1., 2., 3., 4.]);

        let e = a.matmul(&a); // [2,2,2] x [2,2,2]
        assert_eq!(&e.data()[4..], &[4., 0., 0., 4.]);
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Array::randn(&[80, 70], &mut rng);
        let b = Array::randn(&[70, 90], &mut rng);
        let big = a.matmul(&b);
        // Serial reference.
        let mut reference = Array::zeros(&[80, 90]);
        matmul_kernel(a.data(), b.data(), reference.data_mut(), 80, 70, 90);
        for (x, y) in big.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_and_permute() {
        let a = arr(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        let t = a.transpose();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data(), &[1., 4., 2., 5., 3., 6.]);
        let b = arr(&[2, 3, 4], &(0..24).map(|i| i as f32).collect::<Vec<_>>());
        let p = b.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        assert_eq!(p.at(&[1, 0, 2]), b.at(&[0, 2, 1]));
    }

    #[test]
    fn concat_stack_slice() {
        let a = arr(&[2, 2], &[1., 2., 3., 4.]);
        let b = arr(&[2, 2], &[5., 6., 7., 8.]);
        let c0 = Array::concat(&[&a, &b], 0).unwrap();
        assert_eq!(c0.shape(), &[4, 2]);
        assert_eq!(c0.data(), &[1., 2., 3., 4., 5., 6., 7., 8.]);
        let c1 = Array::concat(&[&a, &b], 1).unwrap();
        assert_eq!(c1.shape(), &[2, 4]);
        assert_eq!(c1.data(), &[1., 2., 5., 6., 3., 4., 7., 8.]);
        let s = Array::stack(&[&a, &b], 0).unwrap();
        assert_eq!(s.shape(), &[2, 2, 2]);
        assert_eq!(c1.slice_axis(1, 2, 4).data(), b.data());
        assert_eq!(c0.slice_axis(0, 2, 4).data(), b.data());
        assert!(Array::concat(&[], 0).is_err());
        let bad = arr(&[3, 2], &[0.; 6]);
        assert!(Array::concat(&[&a, &bad], 1).is_err());
    }

    #[test]
    fn assign_slice_roundtrip() {
        let mut z = Array::zeros(&[2, 4]);
        let a = arr(&[2, 2], &[1., 2., 3., 4.]);
        z.assign_slice_axis(1, 1, &a);
        assert_eq!(z.data(), &[0., 1., 2., 0., 0., 3., 4., 0.]);
        assert_eq!(z.slice_axis(1, 1, 3).data(), a.data());
    }

    #[test]
    fn index_select_and_add() {
        let a = arr(&[3, 2], &[1., 2., 3., 4., 5., 6.]);
        let g = a.index_select(0, &[2, 0, 2]);
        assert_eq!(g.shape(), &[3, 2]);
        assert_eq!(g.data(), &[5., 6., 1., 2., 5., 6.]);
        let mut acc = Array::zeros(&[3, 2]);
        acc.index_add(0, &[2, 0, 2], &g);
        assert_eq!(acc.data(), &[1., 2., 0., 0., 10., 12.]);
    }

    #[test]
    fn broadcast_to_and_reduce_back() {
        let a = arr(&[2, 1], &[1., 2.]);
        let b = a.broadcast_to(&[2, 3]).unwrap();
        assert_eq!(b.data(), &[1., 1., 1., 2., 2., 2.]);
        let r = b.reduce_to_shape(&[2, 1]);
        assert_eq!(r.data(), &[3., 6.]);
        let c = arr(&[3], &[1., 1., 1.]);
        let d = c.broadcast_to(&[2, 3]).unwrap();
        assert_eq!(d.reduce_to_shape(&[3]).data(), &[2., 2., 2.]);
        assert!(a.broadcast_to(&[3, 2]).is_err());
    }

    #[test]
    fn reshape_checks_count() {
        let a = arr(&[2, 3], &[0.; 6]);
        assert!(a.reshape(&[3, 2]).is_ok());
        assert!(a.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Array::zeros(&[2]);
        assert!(!a.has_non_finite());
        a.data_mut()[1] = f32::NAN;
        assert!(a.has_non_finite());
    }
}
