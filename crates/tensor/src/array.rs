//! Dense row-major `f32` N-dimensional arrays: the eager kernel layer under
//! the autograd [`crate::Tensor`].
//!
//! Arrays are always contiguous. Broadcasting follows NumPy semantics.
//! Element storage is an `Arc`-shared [`Buffer`] drawn from the crate's
//! size-bucketed buffer pool, so `clone()` is O(1) (copy-on-write via
//! `Arc::make_mut`) and dropped temporaries recycle their allocations.
//! Hot-path kernels — `matmul` (tiled GEMM, see [`crate::gemm`]),
//! same-shape binary ops, `map`-style unary ops, and axis reductions —
//! dispatch to the persistent compute pool ([`crate::pool`]) above the
//! `D2_PAR_THRESHOLD` op-count threshold, with fixed chunk boundaries so
//! results are bit-identical to the serial path at any thread count.

use std::sync::Arc;

use crate::buffers::{self, Buffer};
use crate::error::TensorError;
use crate::gemm;
use crate::pool;
use crate::shape::{broadcast_shapes, broadcast_strides, check_axis, numel, ravel, strides_for};
use rand::distributions::Distribution;
use rand::Rng;
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Elements per pool chunk for elementwise kernels (128 KiB of `f32`).
/// Fixed — independent of thread count — so chunk boundaries, and hence
/// results, never vary with parallelism.
const ELEM_CHUNK: usize = 32 * 1024;

/// Pooled same-shape binary kernels. Each variant's [`BinKind::apply`] is
/// the exact arithmetic of the corresponding serial path, so pooled and
/// serial results are bit-identical.
#[derive(Clone, Copy, Debug)]
pub(crate) enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
}

impl BinKind {
    #[inline(always)]
    fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            BinKind::Add => a + b,
            BinKind::Sub => a - b,
            BinKind::Mul => a * b,
            BinKind::Div => a / b,
        }
    }
}

/// Pooled unary kernels (the `map`-style ops the autograd layer uses).
#[derive(Clone, Copy, Debug)]
pub(crate) enum UnaryKind {
    Relu,
    Sigmoid,
    Tanh,
    Exp,
    Abs,
    Square,
    Sqrt,
    Scale(f32),
    AddScalar(f32),
}

impl UnaryKind {
    #[inline(always)]
    fn apply(self, v: f32) -> f32 {
        match self {
            UnaryKind::Relu => v.max(0.0),
            UnaryKind::Sigmoid => 1.0 / (1.0 + (-v).exp()),
            UnaryKind::Tanh => v.tanh(),
            UnaryKind::Exp => v.exp(),
            UnaryKind::Abs => v.abs(),
            UnaryKind::Square => v * v,
            UnaryKind::Sqrt => v.sqrt(),
            UnaryKind::Scale(s) => v * s,
            UnaryKind::AddScalar(s) => v + s,
        }
    }
}

/// A dense, contiguous, row-major array of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Array {
    shape: Vec<usize>,
    data: Arc<Buffer>,
}

#[derive(Serialize, Deserialize)]
struct ArrayRepr {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Serialize for Array {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        ArrayRepr {
            shape: self.shape.clone(),
            data: self.data.to_vec(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Array {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = ArrayRepr::deserialize(deserializer)?;
        Array::from_vec(&repr.shape, repr.data).map_err(D::Error::custom)
    }
}

impl std::fmt::Debug for Array {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        write!(
            f,
            "Array{{shape: {:?}, data: {:?}{}}}",
            self.shape,
            preview,
            if self.data.len() > 8 { ", ..." } else { "" }
        )
    }
}

impl Array {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    fn from_parts(shape: Vec<usize>, data: Vec<f32>) -> Self {
        debug_assert_eq!(numel(&shape), data.len());
        Self {
            shape,
            data: Arc::new(Buffer::from_vec(data)),
        }
    }

    fn from_buffer(shape: Vec<usize>, data: Buffer) -> Self {
        debug_assert_eq!(numel(&shape), data.len());
        Self {
            shape,
            data: Arc::new(data),
        }
    }

    /// Create an array from a flat buffer; fails if lengths disagree.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self, TensorError> {
        if numel(shape) != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                shape: shape.to_vec(),
                len: data.len(),
            });
        }
        Ok(Self::from_parts(shape.to_vec(), data))
    }

    /// All-zeros array.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::from_buffer(shape.to_vec(), Buffer::zeroed(numel(shape)))
    }

    /// All-ones array.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Array filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = numel(shape);
        let mut data = buffers::acquire_with_capacity(n);
        data.resize(n, value);
        Self::from_parts(shape.to_vec(), data)
    }

    /// Rank-0 scalar.
    pub fn scalar(value: f32) -> Self {
        Self::from_parts(vec![], vec![value])
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut data = buffers::acquire_zeroed(n * n);
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Self::from_parts(vec![n, n], data)
    }

    /// `[0, 1, ..., n-1]` as a 1-D array.
    pub fn arange(n: usize) -> Self {
        let mut data = buffers::acquire_with_capacity(n);
        data.extend((0..n).map(|i| i as f32));
        Self::from_parts(vec![n], data)
    }

    /// Standard-normal samples (Box–Muller via `rand`).
    pub fn randn<R: Rng>(shape: &[usize], rng: &mut R) -> Self {
        let dist = StandardNormal;
        let n = numel(shape);
        let mut data = buffers::acquire_with_capacity(n);
        data.extend((0..n).map(|_| dist.sample(rng)));
        Self::from_parts(shape.to_vec(), data)
    }

    /// Uniform samples in `[lo, hi)`.
    pub fn rand_uniform<R: Rng>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let n = numel(shape);
        let mut data = buffers::acquire_with_capacity(n);
        data.extend((0..n).map(|_| rng.gen_range(lo..hi)));
        Self::from_parts(shape.to_vec(), data)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Dimensions of the array.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Flat read-only view of the contents, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the contents, row-major. Copy-on-write: if the
    /// storage is shared with a clone, it is copied first.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut Arc::make_mut(&mut self.data)[..]
    }

    /// Consume the array, returning its flat buffer.
    pub fn into_data(self) -> Vec<f32> {
        match Arc::try_unwrap(self.data) {
            Ok(buf) => buf.into_vec(),
            Err(shared) => shared.to_vec(),
        }
    }

    /// Element at multi-dimensional coordinates. Panics if out of range.
    pub fn at(&self, coords: &[usize]) -> f32 {
        debug_assert_eq!(coords.len(), self.rank());
        let strides = strides_for(&self.shape);
        self.data[ravel(coords, &strides)]
    }

    /// Set element at multi-dimensional coordinates.
    pub fn set(&mut self, coords: &[usize], value: f32) {
        let strides = strides_for(&self.shape);
        let idx = ravel(coords, &strides);
        self.data_mut()[idx] = value;
    }

    /// Value of a single-element array.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires exactly one element");
        self.data[0]
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Reinterpret with a new shape of identical element count. O(1): the
    /// element storage is shared with `self`.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self, TensorError> {
        if numel(shape) != self.numel() {
            return Err(TensorError::ShapeDataMismatch {
                shape: shape.to_vec(),
                len: self.numel(),
            });
        }
        Ok(Self {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Generalized transpose: `perm` is a permutation of axis indices.
    pub fn permute(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.rank(), "permute: wrong length");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "permute: invalid permutation");
            seen[p] = true;
        }
        let new_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let old_strides = strides_for(&self.shape);
        let permuted_strides: Vec<usize> = perm.iter().map(|&p| old_strides[p]).collect();
        // Iterate output row-major; gather from source via permuted strides.
        let n = numel(&new_shape);
        let mut data = buffers::acquire_with_capacity(n);
        let mut coords = vec![0usize; new_shape.len()];
        for _ in 0..n {
            data.push(self.data[ravel(&coords, &permuted_strides)]);
            // increment coords
            for ax in (0..new_shape.len()).rev() {
                coords[ax] += 1;
                if coords[ax] < new_shape[ax] {
                    break;
                }
                coords[ax] = 0;
            }
        }
        Self::from_parts(new_shape, data)
    }

    /// Swap the last two axes (matrix transpose for rank >= 2).
    pub fn transpose(&self) -> Self {
        assert!(self.rank() >= 2, "transpose requires rank >= 2");
        let mut perm: Vec<usize> = (0..self.rank()).collect();
        let r = self.rank();
        perm.swap(r - 1, r - 2);
        self.permute(&perm)
    }

    /// Materialize a broadcast of `self` to `target` shape.
    pub fn broadcast_to(&self, target: &[usize]) -> Result<Self, TensorError> {
        let merged = broadcast_shapes(&self.shape, target)?;
        if merged != target {
            return Err(TensorError::ShapeMismatch {
                op: "broadcast_to",
                lhs: self.shape.clone(),
                rhs: target.to_vec(),
            });
        }
        if self.shape == target {
            return Ok(self.clone());
        }
        let bstrides = broadcast_strides(&self.shape, target);
        let n = numel(target);
        let mut data = buffers::acquire_with_capacity(n);
        let mut coords = vec![0usize; target.len()];
        for _ in 0..n {
            data.push(self.data[ravel(&coords, &bstrides)]);
            for ax in (0..target.len()).rev() {
                coords[ax] += 1;
                if coords[ax] < target[ax] {
                    break;
                }
                coords[ax] = 0;
            }
        }
        Ok(Self::from_parts(target.to_vec(), data))
    }

    // ------------------------------------------------------------------
    // Elementwise
    // ------------------------------------------------------------------

    /// Apply `f` to every element, producing a new array.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        let mut data = buffers::acquire_with_capacity(self.numel());
        data.extend(self.data.iter().map(|&v| f(v)));
        Self::from_parts(self.shape.clone(), data)
    }

    /// Apply `f` in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.data_mut() {
            *v = f(*v);
        }
    }

    /// Pooled `map`: above the parallel threshold the named kernel runs in
    /// fixed chunks on the compute pool; otherwise (and with identical
    /// arithmetic) serially.
    pub(crate) fn map_op(&self, kind: UnaryKind) -> Self {
        let n = self.numel();
        if pool::should_pool(n) {
            let src = self.data.clone();
            let data = pool::run_chunked(
                n,
                ELEM_CHUNK,
                Arc::new(move |start: usize, out: &mut [f32]| {
                    for (o, &v) in out.iter_mut().zip(&src[start..]) {
                        *o = kind.apply(v);
                    }
                }),
            );
            Self::from_buffer(self.shape.clone(), data)
        } else {
            self.map(|v| kind.apply(v))
        }
    }

    /// Broadcasting binary operation.
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        if self.shape == other.shape {
            let mut data = buffers::acquire_with_capacity(self.numel());
            data.extend(
                self.data
                    .iter()
                    .zip(other.data.iter())
                    .map(|(&a, &b)| f(a, b)),
            );
            return Self::from_parts(self.shape.clone(), data);
        }
        let out_shape = broadcast_shapes(&self.shape, &other.shape)
            .unwrap_or_else(|e| crate::error::violation(format_args!("elementwise op: {e}")));
        let sa = broadcast_strides(&self.shape, &out_shape);
        let sb = broadcast_strides(&other.shape, &out_shape);
        let n = numel(&out_shape);
        let mut data = buffers::acquire_with_capacity(n);
        let mut coords = vec![0usize; out_shape.len()];
        for _ in 0..n {
            data.push(f(
                self.data[ravel(&coords, &sa)],
                other.data[ravel(&coords, &sb)],
            ));
            for ax in (0..out_shape.len()).rev() {
                coords[ax] += 1;
                if coords[ax] < out_shape[ax] {
                    break;
                }
                coords[ax] = 0;
            }
        }
        Self::from_parts(out_shape, data)
    }

    /// Pooled same-shape binary op; falls back to the broadcasting `zip`
    /// path (serial) when shapes differ or the problem is small.
    fn binop(&self, other: &Self, kind: BinKind) -> Self {
        if self.shape == other.shape {
            let n = self.numel();
            if pool::should_pool(n) {
                let a = self.data.clone();
                let b = other.data.clone();
                let data = pool::run_chunked(
                    n,
                    ELEM_CHUNK,
                    Arc::new(move |start: usize, out: &mut [f32]| {
                        for ((o, &x), &y) in out.iter_mut().zip(&a[start..]).zip(&b[start..]) {
                            *o = kind.apply(x, y);
                        }
                    }),
                );
                return Self::from_buffer(self.shape.clone(), data);
            }
        }
        self.zip(other, move |a, b| kind.apply(a, b))
    }

    /// Elementwise (broadcasting) addition.
    pub fn add(&self, other: &Self) -> Self {
        self.binop(other, BinKind::Add)
    }

    /// Elementwise (broadcasting) subtraction.
    pub fn sub(&self, other: &Self) -> Self {
        self.binop(other, BinKind::Sub)
    }

    /// Elementwise (broadcasting) multiplication.
    pub fn mul(&self, other: &Self) -> Self {
        self.binop(other, BinKind::Mul)
    }

    /// Elementwise (broadcasting) division.
    pub fn div(&self, other: &Self) -> Self {
        self.binop(other, BinKind::Div)
    }

    /// Accumulate `other * scale` into `self`; shapes must match exactly.
    pub fn add_scaled_assign(&mut self, other: &Self, scale: f32) {
        assert_eq!(self.shape, other.shape, "add_scaled_assign: shape mismatch");
        for (a, &b) in self.data_mut().iter_mut().zip(other.data.iter()) {
            *a += b * scale;
        }
    }

    /// Multiply every element by `s`.
    pub fn scale(&self, s: f32) -> Self {
        self.map_op(UnaryKind::Scale(s))
    }

    /// Add `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map_op(UnaryKind::AddScalar(s))
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements. **Deliberately never pooled**, whatever
    /// `D2_THREADS` says: a chunked partial-sum reduction would change the
    /// f32 accumulation order (addition is non-associative) and break the
    /// bit-exact resume invariant, so this stays one ascending serial pass.
    /// The tape profiler counts these in their own `serial` column (via
    /// `profile::note_serial_reduction`) so the cost shows up in
    /// `Tape::profile_report` instead of being silently unattributed.
    pub fn sum_all(&self) -> f32 {
        crate::profile::note_serial_reduction();
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty arrays). Serial for the same
    /// accumulation-order reason as [`Array::sum_all`], which it calls.
    pub fn mean_all(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum_all() / self.data.len() as f32
        }
    }

    /// Sum along `axis`. If `keepdim`, the axis remains with size 1.
    ///
    /// Pooled above the threshold by chunking the output space on whole
    /// outer-row boundaries; each output element still accumulates its
    /// `mid` terms in ascending order, so pooled and serial results are
    /// bit-identical.
    pub fn sum_axis(&self, axis: usize, keepdim: bool) -> Self {
        crate::error::require(check_axis(axis, self.rank()), "sum_axis");
        let mut out_shape = self.shape.clone();
        out_shape[axis] = 1;
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let out_len = outer * inner;
        let data = if pool::should_pool(out_len.saturating_mul(mid)) {
            let src = self.data.clone();
            // Chunks are whole multiples of `inner` (a function of the
            // problem shape only), so every chunk covers complete output
            // rows and the serial accumulation loop applies verbatim.
            let chunk = inner * (ELEM_CHUNK / inner).max(1);
            pool::run_chunked(
                out_len,
                chunk,
                Arc::new(move |start: usize, out: &mut [f32]| {
                    let o0 = start / inner;
                    for (oi, orow) in out.chunks_mut(inner).enumerate() {
                        let o = o0 + oi;
                        for m in 0..mid {
                            let base = (o * mid + m) * inner;
                            for (slot, &v) in orow.iter_mut().zip(&src[base..base + inner]) {
                                *slot += v;
                            }
                        }
                    }
                }),
            )
        } else {
            let mut data = Buffer::zeroed(out_len);
            for o in 0..outer {
                for m in 0..mid {
                    let base = (o * mid + m) * inner;
                    let obase = o * inner;
                    for i in 0..inner {
                        data[obase + i] += self.data[base + i];
                    }
                }
            }
            data
        };
        if !keepdim {
            out_shape.remove(axis);
        }
        Self::from_buffer(out_shape, data)
    }

    /// Mean along `axis`.
    pub fn mean_axis(&self, axis: usize, keepdim: bool) -> Self {
        let n = self.shape[axis].max(1) as f32;
        self.sum_axis(axis, keepdim).scale(1.0 / n)
    }

    /// Maximum along `axis` (keepdim).
    pub fn max_axis_keepdim(&self, axis: usize) -> Self {
        crate::error::require(check_axis(axis, self.rank()), "max_axis");
        let mut out_shape = self.shape.clone();
        out_shape[axis] = 1;
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut data = buffers::acquire_zeroed(outer * inner);
        data.fill(f32::NEG_INFINITY);
        for o in 0..outer {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    let v = self.data[base + i];
                    if v > data[obase + i] {
                        data[obase + i] = v;
                    }
                }
            }
        }
        Self::from_parts(out_shape, data)
    }

    /// Numerically stable softmax along `axis`.
    pub fn softmax(&self, axis: usize) -> Self {
        let max = self.max_axis_keepdim(axis);
        let shifted = self.zip(&max, |a, m| (a - m).exp());
        let denom = shifted.sum_axis(axis, true);
        shifted.zip(&denom, |e, d| if d > 0.0 { e / d } else { 0.0 })
    }

    /// Reduce `self` (already shaped like `output`) back to `input_shape` by
    /// summing over broadcast axes. Used to back-propagate through broadcasts.
    pub fn reduce_to_shape(&self, input_shape: &[usize]) -> Self {
        if self.shape == input_shape {
            return self.clone();
        }
        let (leading, repeated) = crate::shape::reduction_axes(input_shape, &self.shape);
        let mut cur = self.clone();
        // Sum away leading axes first (axis 0 repeatedly).
        for _ in 0..leading {
            cur = cur.sum_axis(0, false);
        }
        // Then sum repeated axes with keepdim to preserve positions.
        for &ax in &repeated {
            cur = cur.sum_axis(ax - leading, true);
        }
        debug_assert_eq!(cur.shape(), input_shape);
        cur
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix multiplication.
    ///
    /// Supports `[m,k] x [k,n]`, batched `[b,m,k] x [b,k,n]`, and mixed
    /// `[b,m,k] x [k,n]` / `[m,k] x [b,k,n]` (the rank-2 side is broadcast
    /// across the batch). Large problems run as a tiled GEMM on the
    /// compute pool; results are bit-identical to the serial kernel.
    pub fn matmul(&self, other: &Self) -> Self {
        match (self.rank(), other.rank()) {
            (2, 2) => self.matmul2(other),
            (3, 2) => {
                let b = self.shape[0];
                let (m, k) = (self.shape[1], self.shape[2]);
                assert_eq!(
                    k, other.shape[0],
                    "matmul: inner dims {k} vs {}",
                    other.shape[0]
                );
                let n = other.shape[1];
                // [b,m,k] x [k,n] is row-wise identical to [b·m,k] x [k,n]:
                // reshape (O(1), shared storage), multiply, reshape back.
                let flat = crate::error::require(self.reshape(&[b * m, k]), "matmul");
                let out = flat.matmul2(other);
                Self {
                    shape: vec![b, m, n],
                    data: out.data,
                }
            }
            (2, 3) => {
                let b = other.shape[0];
                let (m, k) = (self.shape[0], self.shape[1]);
                assert_eq!(
                    k, other.shape[1],
                    "matmul: inner dims {k} vs {}",
                    other.shape[1]
                );
                let n = other.shape[2];
                self.matmul_batched(other, b, m, k, n, false)
            }
            (3, 3) => {
                assert_eq!(self.shape[0], other.shape[0], "matmul: batch mismatch");
                let b = self.shape[0];
                let (m, k) = (self.shape[1], self.shape[2]);
                assert_eq!(
                    k, other.shape[1],
                    "matmul: inner dims {k} vs {}",
                    other.shape[1]
                );
                let n = other.shape[2];
                self.matmul_batched(other, b, m, k, n, true)
            }
            (a, b) => {
                crate::error::violation(format_args!("matmul: unsupported ranks {a} and {b}"))
            }
        }
    }

    /// The seed's naive serial matmul (rank 2 only), kept as the reference
    /// baseline for the `tensor_kernels` bench and the determinism suite.
    /// Production code uses [`Array::matmul`], whose tiled kernel matches
    /// this one value-for-value (only a zero's sign bit may differ; see the
    /// gemm module docs).
    #[doc(hidden)]
    pub fn matmul_reference(&self, other: &Self) -> Self {
        assert_eq!(self.rank(), 2, "matmul_reference: lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_reference: rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        assert_eq!(
            k, other.shape[0],
            "matmul: inner dims {k} vs {}",
            other.shape[0]
        );
        let n = other.shape[1];
        let mut data = buffers::acquire_zeroed(m * n);
        gemm::naive(&self.data, &other.data, &mut data, m, k, n);
        Self::from_parts(vec![m, n], data)
    }

    fn matmul2(&self, other: &Self) -> Self {
        let (m, k) = (self.shape[0], self.shape[1]);
        assert_eq!(
            k, other.shape[0],
            "matmul: inner dims {k} vs {}",
            other.shape[0]
        );
        let n = other.shape[1];
        let packed = gemm::pack_b(&other.data, k, n);
        if pool::should_pool(m.saturating_mul(n).saturating_mul(k)) && m > gemm::ROW_CHUNK {
            let a = self.data.clone();
            let packed = Arc::new(Buffer::from_vec(packed));
            let data = pool::run_chunked(
                m * n,
                gemm::ROW_CHUNK * n,
                Arc::new(move |start: usize, out: &mut [f32]| {
                    let i0 = start / n;
                    let rows = out.len() / n;
                    gemm::block(&a[i0 * k..(i0 + rows) * k], k, &packed, n, out);
                }),
            );
            Self::from_buffer(vec![m, n], data)
        } else {
            let mut data = Buffer::zeroed(m * n);
            gemm::block(&self.data, k, &packed, n, &mut data);
            buffers::release(packed);
            Self::from_buffer(vec![m, n], data)
        }
    }

    /// Batched matmul pooled over the combined batch × row-panel space.
    /// When `lhs_batched`, `self` is `[b,m,k]`; otherwise `self` is `[m,k]`
    /// shared across the batch. `other` is always `[b,k,n]` here (the
    /// `[b,m,k] x [k,n]` case reduces to a single rank-2 multiply).
    ///
    /// Every batch element's B page is packed once up front (the packed
    /// layout is `k*n` floats per element, see [`gemm::pack_b_all`]), then
    /// the `b*m` output rows are chunked `ROW_CHUNK` at a time through the
    /// pool — so parallelism scales with `b * m / ROW_CHUNK` rather than
    /// with whichever of batch or rows happens to be wider. Chunk geometry
    /// depends only on `(b, m, n)` and per-element accumulation order is
    /// unchanged, so results stay bit-identical at every `D2_THREADS`.
    fn matmul_batched(
        &self,
        other: &Self,
        b: usize,
        m: usize,
        k: usize,
        n: usize,
        lhs_batched: bool,
    ) -> Self {
        let shape = vec![b, m, n];
        let flops = b.saturating_mul(m).saturating_mul(k).saturating_mul(n);
        let packed = gemm::pack_b_all(&other.data, b, k, n);
        if pool::should_pool(flops) && b * m > gemm::ROW_CHUNK {
            let a = self.data.clone();
            let packed = Arc::new(Buffer::from_vec(packed));
            let data = pool::run_chunked(
                b * m * n,
                gemm::ROW_CHUNK * n,
                Arc::new(move |start: usize, out: &mut [f32]| {
                    // A chunk may span a batch boundary; walk it one batch
                    // element at a time. `out.len()` is always a multiple
                    // of `n` (chunk and total both are).
                    let mut start = start;
                    let mut rest = out;
                    while !rest.is_empty() {
                        let bi = start / (m * n);
                        let i0 = (start - bi * m * n) / n;
                        let rows = ((m - i0) * n).min(rest.len()) / n;
                        let a_block = if lhs_batched {
                            &a[bi * m * k + i0 * k..bi * m * k + (i0 + rows) * k]
                        } else {
                            &a[i0 * k..(i0 + rows) * k]
                        };
                        let (chunk_out, tail) = std::mem::take(&mut rest).split_at_mut(rows * n);
                        gemm::block(
                            a_block,
                            k,
                            &packed[bi * k * n..(bi + 1) * k * n],
                            n,
                            chunk_out,
                        );
                        start += rows * n;
                        rest = tail;
                    }
                }),
            );
            Self::from_buffer(shape, data)
        } else {
            let mut data = Buffer::zeroed(b * m * n);
            for bi in 0..b {
                let a_block = if lhs_batched {
                    &self.data[bi * m * k..(bi + 1) * m * k]
                } else {
                    &self.data[..]
                };
                gemm::block(
                    a_block,
                    k,
                    &packed[bi * k * n..(bi + 1) * k * n],
                    n,
                    &mut data[bi * m * n..(bi + 1) * m * n],
                );
            }
            buffers::release(packed);
            Self::from_buffer(shape, data)
        }
    }

    // ------------------------------------------------------------------
    // Combination / slicing
    // ------------------------------------------------------------------

    /// Concatenate arrays along `axis`. All other dimensions must agree.
    pub fn concat(arrays: &[&Self], axis: usize) -> Result<Self, TensorError> {
        if arrays.is_empty() {
            return Err(TensorError::Empty("concat"));
        }
        let rank = arrays[0].rank();
        check_axis(axis, rank)?;
        for a in arrays {
            if a.rank() != rank {
                return Err(TensorError::ShapeMismatch {
                    op: "concat",
                    lhs: arrays[0].shape.clone(),
                    rhs: a.shape.clone(),
                });
            }
            for d in 0..rank {
                if d != axis && a.shape[d] != arrays[0].shape[d] {
                    return Err(TensorError::ShapeMismatch {
                        op: "concat",
                        lhs: arrays[0].shape.clone(),
                        rhs: a.shape.clone(),
                    });
                }
            }
        }
        let mut out_shape = arrays[0].shape.clone();
        out_shape[axis] = arrays.iter().map(|a| a.shape[axis]).sum();
        let outer: usize = out_shape[..axis].iter().product();
        let inner: usize = out_shape[axis + 1..].iter().product();
        let mut data = buffers::acquire_with_capacity(numel(&out_shape));
        for o in 0..outer {
            for a in arrays {
                let mid = a.shape[axis];
                let start = o * mid * inner;
                data.extend_from_slice(&a.data[start..start + mid * inner]);
            }
        }
        Ok(Self::from_parts(out_shape, data))
    }

    /// Stack arrays of identical shape along a new leading axis at `axis`.
    pub fn stack(arrays: &[&Self], axis: usize) -> Result<Self, TensorError> {
        if arrays.is_empty() {
            return Err(TensorError::Empty("stack"));
        }
        let expanded: Vec<Self> = arrays
            .iter()
            .map(|a| {
                let mut s = a.shape.clone();
                s.insert(axis, 1);
                crate::error::require(a.reshape(&s), "stack")
            })
            .collect();
        let refs: Vec<&Self> = expanded.iter().collect();
        Self::concat(&refs, axis)
    }

    /// Slice `[start, end)` along `axis`.
    pub fn slice_axis(&self, axis: usize, start: usize, end: usize) -> Self {
        crate::error::require(check_axis(axis, self.rank()), "slice_axis");
        assert!(
            start <= end && end <= self.shape[axis],
            "slice_axis: range {start}..{end} out of bounds for dim {}",
            self.shape[axis]
        );
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut out_shape = self.shape.clone();
        out_shape[axis] = end - start;
        let mut data = buffers::acquire_with_capacity(numel(&out_shape));
        for o in 0..outer {
            let base = (o * mid + start) * inner;
            data.extend_from_slice(&self.data[base..base + (end - start) * inner]);
        }
        Self::from_parts(out_shape, data)
    }

    /// Write `src` into the `[start, start+len)` range of `axis` (len from src).
    pub fn assign_slice_axis(&mut self, axis: usize, start: usize, src: &Self) {
        assert_eq!(self.rank(), src.rank(), "assign_slice: rank mismatch");
        for d in 0..self.rank() {
            if d != axis {
                assert_eq!(
                    self.shape[d], src.shape[d],
                    "assign_slice: dim {d} mismatch"
                );
            }
        }
        let len = src.shape[axis];
        assert!(
            start + len <= self.shape[axis],
            "assign_slice: out of range"
        );
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let data = self.data_mut();
        for o in 0..outer {
            let dst_base = (o * mid + start) * inner;
            let src_base = o * len * inner;
            data[dst_base..dst_base + len * inner]
                .copy_from_slice(&src.data[src_base..src_base + len * inner]);
        }
    }

    /// Gather rows along `axis` by index.
    pub fn index_select(&self, axis: usize, indices: &[usize]) -> Self {
        crate::error::require(check_axis(axis, self.rank()), "index_select");
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut out_shape = self.shape.clone();
        out_shape[axis] = indices.len();
        let mut data = buffers::acquire_with_capacity(numel(&out_shape));
        for o in 0..outer {
            for &idx in indices {
                assert!(idx < mid, "index_select: index {idx} out of range {mid}");
                let base = (o * mid + idx) * inner;
                data.extend_from_slice(&self.data[base..base + inner]);
            }
        }
        Self::from_parts(out_shape, data)
    }

    /// Scatter-add: the inverse of `index_select` for gradients. For each
    /// position `j` in `indices`, adds the `j`-th slice of `src` into the
    /// `indices[j]`-th slice of `self` along `axis`.
    pub fn index_add(&mut self, axis: usize, indices: &[usize], src: &Self) {
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        assert_eq!(src.shape[axis], indices.len(), "index_add: count mismatch");
        let data = self.data_mut();
        for o in 0..outer {
            for (j, &idx) in indices.iter().enumerate() {
                assert!(idx < mid, "index_add: index out of range");
                let dst = (o * mid + idx) * inner;
                let s = (o * indices.len() + j) * inner;
                for i in 0..inner {
                    data[dst + i] += src.data[s + i];
                }
            }
        }
    }
}

/// Standard normal distribution via Box–Muller (avoids rand_distr dependency).
struct StandardNormal;

impl Distribution<f32> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        loop {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let v = r * (2.0 * std::f32::consts::PI * u2).cos();
            if v.is_finite() {
                return v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arr(shape: &[usize], data: &[f32]) -> Array {
        Array::from_vec(shape, data.to_vec()).unwrap()
    }

    #[test]
    fn constructors() {
        assert_eq!(Array::zeros(&[2, 3]).numel(), 6);
        assert_eq!(Array::ones(&[2]).data(), &[1.0, 1.0]);
        assert_eq!(Array::full(&[2], 3.5).data(), &[3.5, 3.5]);
        assert_eq!(Array::scalar(2.0).item(), 2.0);
        assert_eq!(Array::eye(2).data(), &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(Array::arange(3).data(), &[0.0, 1.0, 2.0]);
        assert!(Array::from_vec(&[2, 2], vec![1.0]).is_err());
    }

    #[test]
    fn randn_statistics() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Array::randn(&[10_000], &mut rng);
        let mean = a.mean_all();
        let var = a.map(|v| v * v).mean_all() - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn elementwise_broadcast() {
        let a = arr(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = arr(&[3], &[10., 20., 30.]);
        assert_eq!(a.add(&b).data(), &[11., 22., 33., 14., 25., 36.]);
        let c = arr(&[2, 1], &[1., 2.]);
        assert_eq!(a.mul(&c).data(), &[1., 2., 3., 8., 10., 12.]);
        assert_eq!(a.sub(&a).sum_all(), 0.0);
        assert_eq!(a.div(&a).sum_all(), 6.0);
        assert_eq!(a.scale(2.0).data()[5], 12.0);
        assert_eq!(a.add_scalar(1.0).data()[0], 2.0);
    }

    #[test]
    #[should_panic(expected = "elementwise op")]
    fn elementwise_incompatible_panics() {
        let a = arr(&[2, 3], &[0.; 6]);
        let b = arr(&[2, 4], &[0.; 8]);
        let _ = a.add(&b);
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut a = arr(&[2, 2], &[1., 2., 3., 4.]);
        let b = a.clone();
        a.data_mut()[0] = 9.0;
        assert_eq!(a.data()[0], 9.0);
        assert_eq!(b.data()[0], 1.0, "clone must not observe the write");
        // Reshape shares storage but stays value-semantic too.
        let mut c = b.reshape(&[4]).unwrap();
        c.set(&[1], 7.0);
        assert_eq!(b.data()[1], 2.0);
        assert_eq!(c.data(), &[1., 7., 3., 4.]);
    }

    #[test]
    fn reductions() {
        let a = arr(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.sum_all(), 21.0);
        assert_eq!(a.mean_all(), 3.5);
        assert_eq!(a.sum_axis(0, false).data(), &[5., 7., 9.]);
        assert_eq!(a.sum_axis(1, false).data(), &[6., 15.]);
        assert_eq!(a.sum_axis(1, true).shape(), &[2, 1]);
        assert_eq!(a.mean_axis(1, false).data(), &[2., 5.]);
        assert_eq!(a.max_axis_keepdim(1).data(), &[3., 6.]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = arr(&[2, 3], &[1., 2., 3., 1000., 1000., 1000.]);
        let s = a.softmax(1);
        let sums = s.sum_axis(1, false);
        assert!((sums.data()[0] - 1.0).abs() < 1e-6);
        assert!((sums.data()[1] - 1.0).abs() < 1e-6);
        assert!(!s.has_non_finite(), "softmax must be stable for big inputs");
    }

    #[test]
    fn matmul_2d_known_values() {
        let a = arr(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = arr(&[3, 2], &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_batched_and_mixed() {
        let a = arr(&[2, 2, 2], &[1., 0., 0., 1., 2., 0., 0., 2.]);
        let b = arr(&[2, 2], &[1., 2., 3., 4.]);
        let c = a.matmul(&b); // [2,2,2] x [2,2]
        assert_eq!(c.shape(), &[2, 2, 2]);
        assert_eq!(&c.data()[..4], &[1., 2., 3., 4.]);
        assert_eq!(&c.data()[4..], &[2., 4., 6., 8.]);

        let d = b.matmul(&a); // [2,2] x [2,2,2]
        assert_eq!(d.shape(), &[2, 2, 2]);
        assert_eq!(&d.data()[..4], &[1., 2., 3., 4.]);

        let e = a.matmul(&a); // [2,2,2] x [2,2,2]
        assert_eq!(&e.data()[4..], &[4., 0., 0., 4.]);
    }

    #[test]
    fn matmul_matches_reference_values() {
        // `==` rather than `to_bits`: the tiled kernel drops the seed
        // kernel's zero-skip, which can flip a zero's sign bit but never
        // changes a value (see the gemm module docs).
        let mut rng = StdRng::seed_from_u64(3);
        let a = Array::randn(&[80, 70], &mut rng);
        let b = Array::randn(&[70, 90], &mut rng);
        let big = a.matmul(&b);
        let reference = a.matmul_reference(&b);
        let same = big.data().iter().zip(reference.data()).all(|(x, y)| x == y);
        assert!(same, "tiled matmul must match the seed kernel's values");
    }

    #[test]
    fn transpose_and_permute() {
        let a = arr(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        let t = a.transpose();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data(), &[1., 4., 2., 5., 3., 6.]);
        let b = arr(&[2, 3, 4], &(0..24).map(|i| i as f32).collect::<Vec<_>>());
        let p = b.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        assert_eq!(p.at(&[1, 0, 2]), b.at(&[0, 2, 1]));
    }

    #[test]
    fn concat_stack_slice() {
        let a = arr(&[2, 2], &[1., 2., 3., 4.]);
        let b = arr(&[2, 2], &[5., 6., 7., 8.]);
        let c0 = Array::concat(&[&a, &b], 0).unwrap();
        assert_eq!(c0.shape(), &[4, 2]);
        assert_eq!(c0.data(), &[1., 2., 3., 4., 5., 6., 7., 8.]);
        let c1 = Array::concat(&[&a, &b], 1).unwrap();
        assert_eq!(c1.shape(), &[2, 4]);
        assert_eq!(c1.data(), &[1., 2., 5., 6., 3., 4., 7., 8.]);
        let s = Array::stack(&[&a, &b], 0).unwrap();
        assert_eq!(s.shape(), &[2, 2, 2]);
        assert_eq!(c1.slice_axis(1, 2, 4).data(), b.data());
        assert_eq!(c0.slice_axis(0, 2, 4).data(), b.data());
        assert!(Array::concat(&[], 0).is_err());
        let bad = arr(&[3, 2], &[0.; 6]);
        assert!(Array::concat(&[&a, &bad], 1).is_err());
    }

    #[test]
    fn assign_slice_roundtrip() {
        let mut z = Array::zeros(&[2, 4]);
        let a = arr(&[2, 2], &[1., 2., 3., 4.]);
        z.assign_slice_axis(1, 1, &a);
        assert_eq!(z.data(), &[0., 1., 2., 0., 0., 3., 4., 0.]);
        assert_eq!(z.slice_axis(1, 1, 3).data(), a.data());
    }

    #[test]
    fn index_select_and_add() {
        let a = arr(&[3, 2], &[1., 2., 3., 4., 5., 6.]);
        let g = a.index_select(0, &[2, 0, 2]);
        assert_eq!(g.shape(), &[3, 2]);
        assert_eq!(g.data(), &[5., 6., 1., 2., 5., 6.]);
        let mut acc = Array::zeros(&[3, 2]);
        acc.index_add(0, &[2, 0, 2], &g);
        assert_eq!(acc.data(), &[1., 2., 0., 0., 10., 12.]);
    }

    #[test]
    fn broadcast_to_and_reduce_back() {
        let a = arr(&[2, 1], &[1., 2.]);
        let b = a.broadcast_to(&[2, 3]).unwrap();
        assert_eq!(b.data(), &[1., 1., 1., 2., 2., 2.]);
        let r = b.reduce_to_shape(&[2, 1]);
        assert_eq!(r.data(), &[3., 6.]);
        let c = arr(&[3], &[1., 1., 1.]);
        let d = c.broadcast_to(&[2, 3]).unwrap();
        assert_eq!(d.reduce_to_shape(&[3]).data(), &[2., 2., 2.]);
        assert!(a.broadcast_to(&[3, 2]).is_err());
    }

    #[test]
    fn reshape_checks_count() {
        let a = arr(&[2, 3], &[0.; 6]);
        assert!(a.reshape(&[3, 2]).is_ok());
        assert!(a.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Array::zeros(&[2]);
        assert!(!a.has_non_finite());
        a.data_mut()[1] = f32::NAN;
        assert!(a.has_non_finite());
    }
}
