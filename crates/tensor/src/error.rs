//! Error types for tensor operations.

use std::fmt;

/// Errors produced by tensor construction and shape-sensitive operations.
///
/// Most hot-path operators (`add`, `matmul`, ...) panic on shape mismatch to
/// keep the training loop free of `Result` plumbing, mirroring the behaviour
/// of mainstream tensor libraries; the fallible constructors and reshaping
/// entry points return [`TensorError`] so callers handling external input can
/// recover gracefully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Element count does not match the product of the requested shape.
    ShapeDataMismatch {
        /// Requested dimensions.
        shape: Vec<usize>,
        /// Number of elements provided.
        len: usize,
    },
    /// Two shapes are incompatible for the attempted operation.
    ShapeMismatch {
        /// Name of the operation.
        op: &'static str,
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
    },
    /// An axis index was out of range for the given rank.
    AxisOutOfRange {
        /// Offending axis.
        axis: usize,
        /// Rank of the tensor.
        rank: usize,
    },
    /// Empty input where at least one element is required.
    Empty(&'static str),
    /// Non-finite (NaN/Inf) values where finite data is required, e.g. when
    /// building a sparse matrix: a corrupted adjacency must fail loudly
    /// instead of poisoning every downstream product.
    NonFinite {
        /// Name of the rejecting operation.
        op: &'static str,
    },
    /// `D2_FAST_MATH=1` is active but the caller requires bit-exact
    /// arithmetic (e.g. training resume replay). See
    /// [`crate::simd::require_bit_exact`].
    FastMathForbidden {
        /// What demanded bit-exactness.
        context: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { shape, len } => write!(
                f,
                "shape {:?} implies {} elements but {} were provided",
                shape,
                shape.iter().product::<usize>(),
                len
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::Empty(what) => write!(f, "empty input: {what}"),
            TensorError::NonFinite { op } => {
                write!(f, "{op}: input contains non-finite (NaN/Inf) values")
            }
            TensorError::FastMathForbidden { context } => write!(
                f,
                "{context} requires bit-exact kernels but D2_FAST_MATH=1 selected an FMA \
                 path; unset D2_FAST_MATH to proceed"
            ),
        }
    }
}

impl std::error::Error for TensorError {}

/// The crate's single panic funnel for unrecoverable precondition violations.
///
/// Hot-path operators keep their documented panic-on-shape-bug contract, but
/// every such abort is routed through this one function so the `xlint`
/// `no-panic` rule needs exactly one allowlist entry for the whole crate and
/// the panic message format stays uniform.
#[cold]
#[track_caller]
pub(crate) fn violation(detail: impl fmt::Display) -> ! {
    panic!("{detail}")
}

/// Unwrap a shape-checked result, routing failures through [`violation`].
///
/// Used where the operation's documented contract is "panics on shape
/// mismatch" and the caller has no `Result` channel (operator hot paths).
#[track_caller]
pub(crate) fn require<T>(result: Result<T, TensorError>, op: &str) -> T {
    match result {
        Ok(v) => v,
        Err(e) => violation(format_args!("{op}: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TensorError::ShapeDataMismatch {
            shape: vec![2, 3],
            len: 5,
        };
        assert!(e.to_string().contains("6 elements"));
        assert!(e.to_string().contains('5'));

        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        assert!(e.to_string().contains("matmul"));

        let e = TensorError::AxisOutOfRange { axis: 3, rank: 2 };
        assert!(e.to_string().contains("axis 3"));

        let e = TensorError::Empty("concat");
        assert!(e.to_string().contains("concat"));

        let e = TensorError::NonFinite {
            op: "sparse_from_dense",
        };
        assert!(e.to_string().contains("non-finite"));
    }
}
