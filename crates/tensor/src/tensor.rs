//! Reverse-mode automatic differentiation.
//!
//! A [`Tensor`] is a cheap-to-clone handle (`Rc`) to a node in a dynamically
//! built computation DAG. Operators record a backward closure that maps the
//! incoming output gradient to per-parent input gradients; [`Tensor::backward`]
//! runs a topological sweep accumulating gradients into every node that
//! requires them.
//!
//! The graph is rebuilt for every forward pass (define-by-run), so recurrent
//! models simply unroll in time. Nodes are freed when the last handle drops.

use crate::array::Array;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static NO_GRAD_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

pub(crate) fn no_grad_active() -> bool {
    NO_GRAD_DEPTH.with(|d| d.get() > 0)
}

/// Run `f` with gradient recording disabled on this thread: ops executed
/// inside produce constants (no backward closures, no graph retention),
/// which makes pure inference cheaper and lighter on memory. Nestable.
pub fn no_grad<R>(f: impl FnOnce() -> R) -> R {
    NO_GRAD_DEPTH.with(|d| d.set(d.get() + 1));
    // Restore the depth even if `f` panics.
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            NO_GRAD_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    let _reset = Reset;
    f()
}

/// Backward closure: receives the gradient flowing into this node and returns
/// one optional gradient per parent (in parent order). `None` means the parent
/// receives no gradient from this edge.
pub(crate) type BackwardFn = Box<dyn Fn(&Array) -> Vec<Option<Array>>>;

pub(crate) struct Node {
    pub(crate) id: u64,
    pub(crate) value: RefCell<Array>,
    pub(crate) grad: RefCell<Option<Array>>,
    pub(crate) requires_grad: bool,
    pub(crate) parents: Vec<Tensor>,
    pub(crate) backward: Option<BackwardFn>,
    /// Value-buffer bytes charged to the tape profiler at creation (0 when
    /// profiling was inactive); discharged on drop.
    #[cfg(feature = "obsv")]
    pub(crate) profiled_bytes: usize,
}

impl Drop for Node {
    fn drop(&mut self) {
        #[cfg(feature = "obsv")]
        crate::profile::discharge_bytes(self.profiled_bytes);
        // Long op chains (unrolled RNNs) would otherwise drop recursively
        // through `parents` and overflow the stack; unlink iteratively.
        let mut stack = std::mem::take(&mut self.parents);
        while let Some(t) = stack.pop() {
            let mut rc = t.node;
            if let Some(node) = Rc::get_mut(&mut rc) {
                stack.append(&mut node.parents);
            }
            // `rc` drops here with an already-emptied parent list.
        }
    }
}

/// A node in the autodiff graph holding an [`Array`] value.
#[derive(Clone)]
pub struct Tensor {
    pub(crate) node: Rc<Node>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tensor{{id: {}, value: {:?}, requires_grad: {}}}",
            self.node.id,
            self.node.value.borrow(),
            self.node.requires_grad
        )
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Wrap an array as a constant (no gradient tracked).
    pub fn constant(value: Array) -> Self {
        Self::leaf(value, false)
    }

    /// Wrap an array as a trainable parameter (gradient accumulated).
    pub fn parameter(value: Array) -> Self {
        Self::leaf(value, true)
    }

    fn leaf(value: Array, requires_grad: bool) -> Self {
        #[cfg(feature = "obsv")]
        let profiled_bytes = crate::profile::charge_bytes(value.numel() * 4);
        Tensor {
            node: Rc::new(Node {
                // relaxed: node ids only need fetch_add's uniqueness, not ordering
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                value: RefCell::new(value),
                grad: RefCell::new(None),
                requires_grad,
                parents: Vec::new(),
                backward: None,
                #[cfg(feature = "obsv")]
                profiled_bytes,
            }),
        }
    }

    /// Internal: build an op node.
    pub(crate) fn from_op(value: Array, parents: Vec<Tensor>, backward: BackwardFn) -> Self {
        let requires_grad = !no_grad_active() && parents.iter().any(|p| p.node.requires_grad);
        #[cfg(feature = "sanitize")]
        // relaxed: node ids only need fetch_add's uniqueness, not ordering
        crate::sanitize::check_op_output(NEXT_ID.load(Ordering::Relaxed), &value);
        #[cfg(feature = "obsv")]
        let profiled_bytes = crate::profile::charge_bytes(value.numel() * 4);
        Tensor {
            node: Rc::new(Node {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                value: RefCell::new(value),
                grad: RefCell::new(None),
                requires_grad,
                // Without gradients there is no reason to retain the graph.
                parents: if requires_grad { parents } else { Vec::new() },
                backward: if requires_grad { Some(backward) } else { None },
                #[cfg(feature = "obsv")]
                profiled_bytes,
            }),
        }
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /// Snapshot of the current value.
    pub fn value(&self) -> Array {
        self.node.value.borrow().clone()
    }

    /// Run `f` over the value without cloning.
    pub fn with_value<R>(&self, f: impl FnOnce(&Array) -> R) -> R {
        f(&self.node.value.borrow())
    }

    /// Shape of the value.
    pub fn shape(&self) -> Vec<usize> {
        self.node.value.borrow().shape().to_vec()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.node.value.borrow().numel()
    }

    /// Scalar value of a one-element tensor.
    pub fn item(&self) -> f32 {
        self.node.value.borrow().item()
    }

    /// Whether gradients flow through/into this tensor.
    pub fn requires_grad(&self) -> bool {
        self.node.requires_grad
    }

    /// Accumulated gradient, if any.
    pub fn grad(&self) -> Option<Array> {
        self.node.grad.borrow().clone()
    }

    /// Stable identity of the underlying node (used by optimizers).
    pub fn id(&self) -> u64 {
        self.node.id
    }

    /// Reset the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.node.grad.borrow_mut() = None;
    }

    /// Replace the stored gradient outright (gradient clipping).
    pub fn replace_grad(&self, grad: Option<Array>) {
        if let Some(g) = &grad {
            assert_eq!(
                g.shape(),
                self.node.value.borrow().shape(),
                "replace_grad shape mismatch"
            );
        }
        *self.node.grad.borrow_mut() = grad;
    }

    /// A new constant tensor sharing this value but cut from the graph.
    pub fn detach(&self) -> Tensor {
        Tensor::constant(self.value())
    }

    /// Overwrite the value in place (used by optimizers on parameters).
    pub fn set_value(&self, value: Array) {
        let mut v = self.node.value.borrow_mut();
        assert_eq!(
            v.shape(),
            value.shape(),
            "set_value must preserve the parameter shape"
        );
        *v = value;
    }

    /// Apply an in-place update `f(value, grad)` (optimizer step helper).
    /// Does nothing if the tensor has no gradient.
    pub fn apply_grad(&self, f: impl FnOnce(&mut Array, &Array)) {
        let grad = self.node.grad.borrow();
        if let Some(g) = grad.as_ref() {
            f(&mut self.node.value.borrow_mut(), g);
        }
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Back-propagate from this (typically scalar loss) tensor, accumulating
    /// `d self / d leaf` into every reachable node with `requires_grad`.
    pub fn backward(&self) {
        let seed = Array::ones(self.node.value.borrow().shape());
        self.backward_with(seed);
    }

    /// Back-propagate with an explicit seed gradient (same shape as value).
    pub fn backward_with(&self, seed: Array) {
        let _prof = crate::profile::op_scope("backward");
        assert_eq!(
            seed.shape(),
            self.node.value.borrow().shape(),
            "backward seed must match the output shape"
        );
        if !self.node.requires_grad {
            return;
        }
        // Topological order (parents before children in `order`, we iterate
        // reversed so gradients flow output -> inputs).
        let mut order: Vec<Tensor> = Vec::new();
        let mut visited: HashMap<u64, ()> = HashMap::new();
        // Iterative DFS to avoid stack overflow on long unrolled RNN graphs.
        let mut stack: Vec<(Tensor, usize)> = vec![(self.clone(), 0)];
        visited.insert(self.node.id, ());
        while let Some((t, child_idx)) = stack.pop() {
            if child_idx < t.node.parents.len() {
                let parent = t.node.parents[child_idx].clone();
                stack.push((t, child_idx + 1));
                if parent.node.requires_grad && !visited.contains_key(&parent.node.id) {
                    visited.insert(parent.node.id, ());
                    stack.push((parent, 0));
                }
            } else {
                order.push(t);
            }
        }

        // Seed and sweep.
        accumulate(&self.node, seed);
        for t in order.iter().rev() {
            let grad_out = if t.node.backward.is_some() {
                // Non-leaf gradients are transient: consume and clear so a
                // second backward() pass does not double-count (leaf
                // parameters keep accumulating, as optimizers expect).
                t.node.grad.borrow_mut().take()
            } else {
                t.node.grad.borrow().clone()
            };
            let (Some(grad_out), Some(backward)) = (grad_out, t.node.backward.as_ref()) else {
                continue;
            };
            #[cfg(feature = "sanitize")]
            crate::sanitize::check_grad(
                "output gradient",
                t.node.id,
                &grad_out,
                t.node.value.borrow().shape(),
            );
            let parent_grads = backward(&grad_out);
            debug_assert_eq!(parent_grads.len(), t.node.parents.len());
            for (parent, grad) in t.node.parents.iter().zip(parent_grads) {
                if let Some(g) = grad {
                    #[cfg(feature = "sanitize")]
                    crate::sanitize::check_grad(
                        "parent gradient",
                        parent.node.id,
                        &g,
                        parent.node.value.borrow().shape(),
                    );
                    if parent.node.requires_grad {
                        accumulate(&parent.node, g);
                    }
                }
            }
        }
    }
}

fn accumulate(node: &Node, grad: Array) {
    let mut slot = node.grad.borrow_mut();
    match slot.as_mut() {
        Some(existing) => existing.add_scaled_assign(&grad, 1.0),
        None => *slot = Some(grad),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_do_not_track() {
        let a = Tensor::constant(Array::scalar(1.0));
        let b = Tensor::constant(Array::scalar(2.0));
        let c = a.add(&b);
        assert!(!c.requires_grad());
        c.backward();
        assert!(a.grad().is_none());
    }

    #[test]
    fn simple_chain_gradient() {
        // y = (a + b) * a ; dy/da = 2a + b ; dy/db = a
        let a = Tensor::parameter(Array::scalar(3.0));
        let b = Tensor::parameter(Array::scalar(4.0));
        let y = a.add(&b).mul(&a);
        assert_eq!(y.item(), 21.0);
        y.backward();
        assert_eq!(a.grad().unwrap().item(), 10.0);
        assert_eq!(b.grad().unwrap().item(), 3.0);
    }

    #[test]
    fn grad_accumulates_across_backwards() {
        let a = Tensor::parameter(Array::scalar(2.0));
        let y = a.mul(&a);
        y.backward();
        y.backward();
        assert_eq!(a.grad().unwrap().item(), 8.0); // 2 * (2a)
        a.zero_grad();
        assert!(a.grad().is_none());
    }

    #[test]
    fn diamond_graph_accumulates_once_per_path() {
        // y = a*a + a*a: two paths, dy/da = 4a.
        let a = Tensor::parameter(Array::scalar(3.0));
        let p = a.mul(&a);
        let y = p.add(&p);
        y.backward();
        assert_eq!(a.grad().unwrap().item(), 12.0);
    }

    #[test]
    fn detach_stops_gradient() {
        let a = Tensor::parameter(Array::scalar(5.0));
        let d = a.detach();
        let y = d.mul(&d);
        y.backward();
        assert!(a.grad().is_none());
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let mut x = Tensor::parameter(Array::scalar(1.0));
        let one = Tensor::constant(Array::scalar(1.0000001));
        for _ in 0..20_000 {
            x = x.mul(&one);
        }
        x.backward();
        // Gradient is finite and roughly 1.
        let g = x.grad(); // grad of the head is the seed
        assert!(g.is_some() || x.requires_grad());
    }

    #[test]
    fn no_grad_disables_recording_and_restores() {
        let a = Tensor::parameter(Array::scalar(2.0));
        let y = crate::tensor::no_grad(|| a.mul(&a));
        assert!(!y.requires_grad());
        y.backward();
        assert!(a.grad().is_none());
        // Recording resumes outside the scope.
        let z = a.mul(&a);
        assert!(z.requires_grad());
        z.backward();
        assert_eq!(a.grad().unwrap().item(), 4.0);
    }

    #[test]
    fn no_grad_nests_and_survives_panic() {
        let caught = std::panic::catch_unwind(|| {
            crate::tensor::no_grad(|| {
                crate::tensor::no_grad(|| panic!("boom"));
            })
        });
        assert!(caught.is_err());
        // Depth restored: recording works again.
        let a = Tensor::parameter(Array::scalar(1.0));
        assert!(a.mul(&a).requires_grad());
    }

    #[test]
    fn set_value_keeps_shape() {
        let a = Tensor::parameter(Array::zeros(&[2, 2]));
        a.set_value(Array::ones(&[2, 2]));
        assert_eq!(a.value().sum_all(), 4.0);
    }

    #[test]
    #[should_panic(expected = "preserve the parameter shape")]
    fn set_value_rejects_shape_change() {
        let a = Tensor::parameter(Array::zeros(&[2, 2]));
        a.set_value(Array::ones(&[3]));
    }
}
