//! # d2stgnn-baselines
//!
//! The comparison methods of the paper's Table 3, reimplemented on the same
//! substrate as D²STGNN:
//!
//! * classical — Historical Average, VAR (ridge least squares), linear SVR;
//! * neural — FC-LSTM, DCRNN-lite (DCGRU seq2seq), Graph WaveNet-lite
//!   (gated dilated TCN + GCN + adaptive adjacency), STGCN-lite.
//!
//! * extended — GMAN-lite (multi-attention + transform attention),
//!   ASTGCN-lite (spatial/temporal attention GCN), MTGNN-lite (mix-hop +
//!   dilated inception), STSGCN-lite (synchronous block-graph convolution),
//!   DGCRN-lite (per-step generated dynamic graphs; its static variant is
//!   the DGCRN-dagger row of Table 4).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod astgcn;
pub mod classical;
pub mod dcrnn;
pub mod dgcrn;
mod error;
pub mod fc_lstm;
pub mod gman;
pub mod gwnet;
pub mod mtgnn;
pub mod stgcn;
pub mod stsgcn;

pub use astgcn::Astgcn;
pub use classical::{
    evaluate_classical, ClassicalForecaster, HistoricalAverage, LinearSvr, VectorAutoRegression,
};
pub use dcrnn::{DcgruCell, Dcrnn, DiffusionConv};
pub use dgcrn::Dgcrn;
pub use fc_lstm::FcLstm;
pub use gman::Gman;
pub use gwnet::GraphWaveNet;
pub use mtgnn::Mtgnn;
pub use stgcn::Stgcn;
pub use stsgcn::Stsgcn;
