//! GMAN-lite baseline (Zheng et al., AAAI 2020): a graph multi-attention
//! network — spatial attention over sensors, temporal attention over time,
//! gated fusion of the two, and a transform attention that maps the encoded
//! history onto the forecast horizon via future time embeddings.

use d2stgnn_core::TrafficModel;
use d2stgnn_data::Batch;
use d2stgnn_tensor::nn::{Embedding, LayerNorm, Linear, Mlp, Module, MultiHeadSelfAttention};
use d2stgnn_tensor::{Array, Tensor};
use rand::rngs::StdRng;
use rand::Rng;

/// Spatial-temporal embedding: learned node embedding fused with learned
/// time-of-day / day-of-week embeddings through a two-layer FC.
struct StEmbedding {
    node: Embedding,
    tod: Embedding,
    dow: Embedding,
    fuse: Mlp,
    d: usize,
}

impl StEmbedding {
    fn new<R: Rng>(n: usize, steps_per_day: usize, d: usize, rng: &mut R) -> Self {
        Self {
            node: Embedding::new(n, d, rng),
            tod: Embedding::new(steps_per_day, d, rng),
            dow: Embedding::new(7, d, rng),
            fuse: Mlp::new(3 * d, d, d, rng),
            d,
        }
    }

    /// `[B, T, N, d]` embedding for flat per-step (tod, dow) indices.
    fn forward(&self, tod: &[usize], dow: &[usize], b: usize, t: usize, n: usize) -> Tensor {
        let d = self.d;
        let te = self
            .tod
            .lookup(tod)
            .reshape(&[b, t, 1, d])
            .broadcast_to(&[b, t, n, d]);
        let we = self
            .dow
            .lookup(dow)
            .reshape(&[b, t, 1, d])
            .broadcast_to(&[b, t, n, d]);
        let all: Vec<usize> = (0..n).collect();
        let ne = self
            .node
            .lookup(&all)
            .reshape(&[1, 1, n, d])
            .broadcast_to(&[b, t, n, d]);
        self.fuse.forward(&Tensor::concat(&[&ne, &te, &we], 3))
    }
}

impl Module for StEmbedding {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.node.parameters();
        p.extend(self.tod.parameters());
        p.extend(self.dow.parameters());
        p.extend(self.fuse.parameters());
        p
    }
}

/// One ST-attention block: spatial attention + temporal attention fused by a
/// learned gate, with a residual connection and layer norm.
struct StAttBlock {
    spatial: MultiHeadSelfAttention,
    temporal: MultiHeadSelfAttention,
    gate_s: Linear,
    gate_t: Linear,
    norm: LayerNorm,
}

impl StAttBlock {
    fn new<R: Rng>(d: usize, heads: usize, rng: &mut R) -> Self {
        Self {
            spatial: MultiHeadSelfAttention::new(d, heads, rng),
            temporal: MultiHeadSelfAttention::new(d, heads, rng),
            gate_s: Linear::new(d, d, true, rng),
            gate_t: Linear::new(d, d, true, rng),
            norm: LayerNorm::new(d),
        }
    }

    /// `h`, `ste`: `[B, T, N, d]`.
    fn forward(&self, h: &Tensor, ste: &Tensor) -> Tensor {
        let shape = h.shape();
        let (b, t, n, d) = (shape[0], shape[1], shape[2], shape[3]);
        let hs = h.add(ste);
        // Spatial attention: attend over the node axis at each time step.
        let sp_in = hs.reshape(&[b * t, n, d]);
        let sp = self.spatial.forward(&sp_in).reshape(&[b, t, n, d]);
        // Temporal attention: attend over the time axis for each node.
        let tp_in = hs.permute(&[0, 2, 1, 3]).reshape(&[b * n, t, d]);
        let tp = self
            .temporal
            .forward(&tp_in)
            .reshape(&[b, n, t, d])
            .permute(&[0, 2, 1, 3]);
        // Gated fusion (Eq. 9 of GMAN): z = sigmoid(HS Wz + HT Wz').
        let z = self
            .gate_s
            .forward(&sp)
            .add(&self.gate_t.forward(&tp))
            .sigmoid();
        let ones = Tensor::constant(Array::ones(&z.shape()));
        let fused = z.mul(&sp).add(&ones.sub(&z).mul(&tp));
        self.norm.forward(&h.add(&fused))
    }
}

impl Module for StAttBlock {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.spatial.parameters();
        p.extend(self.temporal.parameters());
        p.extend(self.gate_s.parameters());
        p.extend(self.gate_t.parameters());
        p.extend(self.norm.parameters());
        p
    }
}

/// GMAN-lite.
pub struct Gman {
    st_emb: StEmbedding,
    input_proj: Linear,
    blocks: Vec<StAttBlock>,
    transform_q: Linear,
    transform_k: Linear,
    head: Mlp,
    num_nodes: usize,
    steps_per_day: usize,
    d: usize,
    tf: usize,
}

impl Gman {
    /// Build with hidden width `d` and `blocks` ST-attention blocks.
    pub fn new<R: Rng>(
        num_nodes: usize,
        steps_per_day: usize,
        d: usize,
        heads: usize,
        blocks: usize,
        tf: usize,
        rng: &mut R,
    ) -> Self {
        Self {
            st_emb: StEmbedding::new(num_nodes, steps_per_day, d, rng),
            input_proj: Linear::new(1, d, true, rng),
            blocks: (0..blocks)
                .map(|_| StAttBlock::new(d, heads, rng))
                .collect(),
            transform_q: Linear::new(d, d, false, rng),
            transform_k: Linear::new(d, d, false, rng),
            head: Mlp::new(d, d, 1, rng),
            num_nodes,
            steps_per_day,
            d,
            tf,
        }
    }

    /// Future (tod, dow) indices extrapolated from each window's last step.
    fn future_slots(
        &self,
        tod: &[usize],
        dow: &[usize],
        b: usize,
        th: usize,
    ) -> (Vec<usize>, Vec<usize>) {
        let spd = self.steps_per_day;
        let mut ftod = Vec::with_capacity(b * self.tf);
        let mut fdow = Vec::with_capacity(b * self.tf);
        for bi in 0..b {
            let last_tod = tod[(bi + 1) * th - 1];
            let last_dow = dow[(bi + 1) * th - 1];
            for h in 1..=self.tf {
                let slot = last_tod + h;
                ftod.push(slot % spd);
                fdow.push((last_dow + slot / spd) % 7);
            }
        }
        (ftod, fdow)
    }
}

impl TrafficModel for Gman {
    fn forward(&self, batch: &Batch, _training: bool, _rng: &mut StdRng) -> Tensor {
        let shape = batch.x.shape();
        let (b, th, n, _c) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(n, self.num_nodes, "node count mismatch");
        let d = self.d;

        let ste_hist = self.st_emb.forward(&batch.tod, &batch.dow, b, th, n);
        let mut h = self.input_proj.forward(&Tensor::constant(batch.x.clone()));
        for block in &self.blocks {
            h = block.forward(&h, &ste_hist);
        }

        // Transform attention: future STE queries attend over encoded history.
        let (ftod, fdow) = self.future_slots(&batch.tod, &batch.dow, b, th);
        let ste_fut = self.st_emb.forward(&ftod, &fdow, b, self.tf, n);
        let q = self
            .transform_q
            .forward(&ste_fut)
            .permute(&[0, 2, 1, 3])
            .reshape(&[b * n, self.tf, d]);
        let k = self
            .transform_k
            .forward(&ste_hist)
            .permute(&[0, 2, 1, 3])
            .reshape(&[b * n, th, d]);
        let v = h.permute(&[0, 2, 1, 3]).reshape(&[b * n, th, d]);
        let attn = q
            .matmul(&k.transpose())
            .scale(1.0 / (d as f32).sqrt())
            .softmax(2);
        let decoded = attn.matmul(&v); // [B*N, tf, d]

        self.head
            .forward(&decoded)
            .reshape(&[b, n, self.tf, 1])
            .permute(&[0, 2, 1, 3])
    }

    fn name(&self) -> String {
        "GMAN".to_string()
    }

    fn horizon(&self) -> usize {
        self.tf
    }
}

impl Module for Gman {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.st_emb.parameters();
        p.extend(self.input_proj.parameters());
        for blk in &self.blocks {
            p.extend(blk.parameters());
        }
        p.extend(self.transform_q.parameters());
        p.extend(self.transform_k.parameters());
        p.extend(self.head.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2stgnn_data::{simulate, SimulatorConfig, Split, WindowedDataset};
    use rand::SeedableRng;

    fn setup() -> (Gman, WindowedDataset, StdRng) {
        let mut cfg = SimulatorConfig::tiny();
        cfg.num_nodes = 6;
        cfg.num_steps = 288;
        cfg.knn = 2;
        let data = WindowedDataset::new(simulate(&cfg), 12, 12, (0.6, 0.2, 0.2));
        let mut rng = StdRng::seed_from_u64(0);
        let model = Gman::new(6, 288, 8, 2, 1, 12, &mut rng);
        (model, data, rng)
    }

    #[test]
    fn forward_shape() {
        let (model, data, mut rng) = setup();
        let batch = data.batch(Split::Train, &[0, 1]);
        let pred = model.forward(&batch, false, &mut rng);
        assert_eq!(pred.shape(), vec![2, 12, 6, 1]);
        assert!(!pred.value().has_non_finite());
    }

    #[test]
    fn future_slots_wrap_midnight_and_week() {
        let (model, _, _) = setup();
        // One window whose last input step is 23:55 Sunday (tod 287, dow 6).
        let tod: Vec<usize> = (276..288).collect();
        let dow = vec![6usize; 12];
        let (ftod, fdow) = model.future_slots(&tod, &dow, 1, 12);
        assert_eq!(ftod[0], 0, "first future slot wraps to midnight");
        assert_eq!(fdow[0], 0, "sunday wraps to monday");
        assert_eq!(ftod[11], 11);
    }

    #[test]
    fn time_embeddings_affect_predictions() {
        let (model, data, mut rng) = setup();
        let batch_a = data.batch(Split::Train, &[0]);
        let mut batch_b = batch_a.clone();
        for v in batch_b.tod.iter_mut() {
            *v = (*v + 144) % 288;
        }
        let pa = model.forward(&batch_a, false, &mut rng).value();
        let pb = model.forward(&batch_b, false, &mut rng).value();
        assert_ne!(pa.data(), pb.data());
    }

    #[test]
    fn training_step_reduces_loss() {
        let (model, data, mut rng) = setup();
        let batch = data.batch(Split::Train, &[0, 1]);
        let target = Tensor::constant(data.scaler().transform(&batch.y));
        let loss_of = |m: &Gman, rng: &mut StdRng| {
            d2stgnn_tensor::losses::mae_loss(&m.forward(&batch, true, rng), &target)
        };
        let l0 = loss_of(&model, &mut rng);
        l0.backward();
        use d2stgnn_tensor::optim::{Adam, Optimizer};
        let mut opt = Adam::new(model.parameters(), 0.01);
        opt.step();
        assert!(loss_of(&model, &mut rng).item() < l0.item());
    }
}
