//! Classical (non-neural) baselines of Table 3: Historical Average, Vector
//! Auto-Regression, and linear Support Vector Regression.

use d2stgnn_data::{metrics, Metrics, Split, TrafficData, WindowedDataset};
use d2stgnn_tensor::Array;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A forecaster fitted once on the training segment and queried per window.
pub trait ClassicalForecaster {
    /// Fit on the training portion of the dataset.
    fn fit(&mut self, data: &WindowedDataset);

    /// Predict `[T_f, N]` raw-scale values for the window whose *input* ends
    /// at raw time step `t_end - 1` (i.e. the window occupies
    /// `[t_end - th, t_end)` and the targets are `[t_end, t_end + tf)`).
    fn predict(&self, data: &WindowedDataset, t_end: usize) -> Array;

    /// Display name.
    fn name(&self) -> String;
}

/// Evaluate a fitted classical forecaster on a split; returns the stacked
/// predictions/targets `[S, T_f, N]` plus the per-horizon metrics.
pub fn evaluate_classical<F: ClassicalForecaster>(
    model: &F,
    data: &WindowedDataset,
    split: Split,
    null_val: f32,
) -> (Array, Array, Vec<(usize, Metrics)>) {
    let starts: Vec<usize> = data.window_starts(split).to_vec();
    let (tf, n) = (data.tf(), data.num_nodes());
    let mut pred = Array::zeros(&[starts.len(), tf, n]);
    let mut target = Array::zeros(&[starts.len(), tf, n]);
    for (s_idx, &start) in starts.iter().enumerate() {
        let t_end = start + data.th();
        let p = model.predict(data, t_end);
        assert_eq!(p.shape(), &[tf, n], "{} returned a bad shape", model.name());
        for t in 0..tf {
            for i in 0..n {
                pred.set(&[s_idx, t, i], p.at(&[t, i]));
                target.set(&[s_idx, t, i], data.data().values.at(&[t_end + t, i]));
            }
        }
    }
    let hs: Vec<usize> = [3, 6, 12].into_iter().filter(|h| *h <= tf).collect();
    let horizons = metrics::evaluate_horizons(&pred, &target, &hs, null_val);
    (pred, target, horizons)
}

// ----------------------------------------------------------------------
// Historical Average
// ----------------------------------------------------------------------

/// Historical Average: traffic as a periodic process — the prediction for a
/// future slot is the training-set average of that (time-of-day, weekday/
/// weekend) slot for that sensor.
#[derive(Clone)]
pub struct HistoricalAverage {
    /// `[2, steps_per_day, N]` means (weekday class 0, weekend class 1).
    table: Option<Array>,
    steps_per_day: usize,
}

impl HistoricalAverage {
    /// New unfitted model.
    pub fn new() -> Self {
        Self {
            table: None,
            steps_per_day: 0,
        }
    }

    fn day_class(dow: usize) -> usize {
        usize::from(dow >= 5)
    }

    /// Steps per day the table was fitted with (`0` before [`fit`]).
    ///
    /// [`fit`]: ClassicalForecaster::fit
    pub fn steps_per_day(&self) -> usize {
        self.steps_per_day
    }

    /// `true` once [`ClassicalForecaster::fit`] has run.
    pub fn is_fitted(&self) -> bool {
        self.table.is_some()
    }

    /// Predict `[tf, N]` raw-scale values for forecast steps starting at the
    /// given `(day-of-week, time-of-day slot)`, without needing the dataset.
    ///
    /// This is the serving entry point: a live request knows only the clock
    /// position of its first forecast step. Slots wrap around midnight and
    /// advance the weekday.
    ///
    /// # Panics
    /// If the model is unfitted.
    pub fn predict_slots(&self, start_dow: usize, start_slot: usize, tf: usize) -> Array {
        let table = crate::error::required(
            self.table.as_ref(),
            "HistoricalAverage::fit() must run before predict()",
        );
        let spd = self.steps_per_day;
        let n = table.shape()[2];
        let mut out = Array::zeros(&[tf, n]);
        for h in 0..tf {
            let abs = start_slot + h;
            let slot = abs % spd;
            let dow = (start_dow + abs / spd) % 7;
            let cls = Self::day_class(dow);
            for i in 0..n {
                out.set(&[h, i], table.at(&[cls, slot, i]));
            }
        }
        out
    }
}

impl Default for HistoricalAverage {
    fn default() -> Self {
        Self::new()
    }
}

impl ClassicalForecaster for HistoricalAverage {
    fn fit(&mut self, data: &WindowedDataset) {
        let raw: &TrafficData = data.data();
        let (train_end, _) = data.split_bounds();
        let (spd, n) = (raw.steps_per_day, raw.num_nodes());
        let mut sums = vec![0f64; 2 * spd * n];
        let mut counts = vec![0usize; 2 * spd * n];
        for t in 0..train_end {
            let slot = raw.time_of_day(t);
            let cls = Self::day_class(raw.day_of_week(t));
            for i in 0..n {
                let v = raw.values.at(&[t, i]);
                if v != 0.0 {
                    sums[(cls * spd + slot) * n + i] += v as f64;
                    counts[(cls * spd + slot) * n + i] += 1;
                }
            }
        }
        // Global fallback mean for never-seen slots.
        let global = {
            let s: f64 = sums.iter().sum();
            let c: usize = counts.iter().sum();
            if c > 0 {
                (s / c as f64) as f32
            } else {
                0.0
            }
        };
        let table_data: Vec<f32> = sums
            .iter()
            .zip(&counts)
            .map(|(s, c)| {
                if *c > 0 {
                    (*s / *c as f64) as f32
                } else {
                    global
                }
            })
            .collect();
        self.table = Some(crate::error::require(
            Array::from_vec(&[2, spd, n], table_data),
            "table shape",
        ));
        self.steps_per_day = spd;
    }

    fn predict(&self, data: &WindowedDataset, t_end: usize) -> Array {
        let table = crate::error::required(
            self.table.as_ref(),
            "HistoricalAverage::fit() must run before predict()",
        );
        let raw = data.data();
        let (tf, n) = (data.tf(), data.num_nodes());
        let mut out = Array::zeros(&[tf, n]);
        for h in 0..tf {
            let t = t_end + h;
            let slot = raw.time_of_day(t);
            let cls = Self::day_class(raw.day_of_week(t));
            for i in 0..n {
                out.set(&[h, i], table.at(&[cls, slot, i]));
            }
        }
        out
    }

    fn name(&self) -> String {
        "HA".to_string()
    }
}

// ----------------------------------------------------------------------
// Vector Auto-Regression
// ----------------------------------------------------------------------

/// Vector Auto-Regression of order `p`, fitted by ridge-regularized least
/// squares on the normalized training series; multi-step forecasts iterate
/// the one-step model.
pub struct VectorAutoRegression {
    /// Lag order.
    p: usize,
    /// Ridge strength.
    lambda: f64,
    /// Coefficients `[N*p + 1, N]` (last row = intercept), normalized scale.
    coef: Option<Array>,
}

impl VectorAutoRegression {
    /// New unfitted VAR(p).
    pub fn new(p: usize, lambda: f64) -> Self {
        assert!(p >= 1, "VAR order must be >= 1");
        Self {
            p,
            lambda,
            coef: None,
        }
    }

    /// Lag order.
    pub fn order(&self) -> usize {
        self.p
    }
}

impl ClassicalForecaster for VectorAutoRegression {
    fn fit(&mut self, data: &WindowedDataset) {
        let raw = data.data();
        let (train_end, _) = data.split_bounds();
        let n = raw.num_nodes();
        let p = self.p;
        assert!(train_end > p + 1, "not enough training data for VAR({p})");
        let scaler = data.scaler();
        let d = n * p + 1;
        // Normal equations on normalized data: (XᵀX + λI) W = XᵀY.
        let mut xtx = vec![0f64; d * d];
        let mut xty = vec![0f64; d * n];
        let norm = |t: usize, i: usize| -> f64 {
            ((raw.values.at(&[t, i]) - scaler.mean()) / scaler.std()) as f64
        };
        let mut xrow = vec![0f64; d];
        for t in p..train_end {
            for lag in 0..p {
                for i in 0..n {
                    xrow[lag * n + i] = norm(t - 1 - lag, i);
                }
            }
            xrow[d - 1] = 1.0;
            for a in 0..d {
                if xrow[a] == 0.0 {
                    continue;
                }
                for b in a..d {
                    xtx[a * d + b] += xrow[a] * xrow[b];
                }
                for j in 0..n {
                    xty[a * n + j] += xrow[a] * norm(t, j);
                }
            }
        }
        // Symmetrize and regularize.
        for a in 0..d {
            for b in 0..a {
                xtx[a * d + b] = xtx[b * d + a];
            }
            xtx[a * d + a] += self.lambda;
        }
        let w = solve_multi(&xtx, &xty, d, n);
        self.coef = Some(crate::error::require(
            Array::from_vec(&[d, n], w.iter().map(|v| *v as f32).collect()),
            "coef shape",
        ));
    }

    fn predict(&self, data: &WindowedDataset, t_end: usize) -> Array {
        let coef =
            crate::error::required(self.coef.as_ref(), "Var::fit() must run before predict()");
        let raw = data.data();
        let scaler = data.scaler();
        let (tf, n, p) = (data.tf(), data.num_nodes(), self.p);
        let d = n * p + 1;
        // History buffer, newest first, normalized.
        let mut history: Vec<Vec<f32>> = (0..p)
            .map(|lag| {
                (0..n)
                    .map(|i| (raw.values.at(&[t_end - 1 - lag, i]) - scaler.mean()) / scaler.std())
                    .collect()
            })
            .collect();
        let mut out = Array::zeros(&[tf, n]);
        for h in 0..tf {
            let mut next = vec![0f32; n];
            for (j, slot) in next.iter_mut().enumerate() {
                let mut acc = coef.at(&[d - 1, j]); // intercept
                for (lag, lagged) in history.iter().enumerate() {
                    for (i, v) in lagged.iter().enumerate() {
                        acc += coef.at(&[lag * n + i, j]) * v;
                    }
                }
                *slot = acc;
            }
            for (i, v) in next.iter().enumerate() {
                out.set(&[h, i], v * scaler.std() + scaler.mean());
            }
            history.rotate_right(1);
            history[0] = next;
        }
        out
    }

    fn name(&self) -> String {
        format!("VAR({})", self.p)
    }
}

/// Solve `A W = B` for `W` (`A` is `d x d`, `B` is `d x m`) by Gaussian
/// elimination with partial pivoting. Panics on a singular system.
fn solve_multi(a: &[f64], b: &[f64], d: usize, m: usize) -> Vec<f64> {
    let mut aug = vec![0f64; d * (d + m)];
    for r in 0..d {
        aug[r * (d + m)..r * (d + m) + d].copy_from_slice(&a[r * d..(r + 1) * d]);
        aug[r * (d + m) + d..(r + 1) * (d + m)].copy_from_slice(&b[r * m..(r + 1) * m]);
    }
    let w = d + m;
    for col in 0..d {
        // Partial pivot.
        let pivot = crate::error::required(
            (col..d).max_by(|&r1, &r2| aug[r1 * w + col].abs().total_cmp(&aug[r2 * w + col].abs())),
            "pivot search range is non-empty",
        );
        assert!(
            aug[pivot * w + col].abs() > 1e-12,
            "singular system in ridge solve"
        );
        if pivot != col {
            for k in 0..w {
                aug.swap(col * w + k, pivot * w + k);
            }
        }
        let diag = aug[col * w + col];
        for k in col..w {
            aug[col * w + k] /= diag;
        }
        for r in 0..d {
            if r == col {
                continue;
            }
            let factor = aug[r * w + col];
            if factor == 0.0 {
                continue;
            }
            for k in col..w {
                aug[r * w + k] -= factor * aug[col * w + k];
            }
        }
    }
    let mut out = vec![0f64; d * m];
    for r in 0..d {
        out[r * m..(r + 1) * m].copy_from_slice(&aug[r * w + d..(r + 1) * w]);
    }
    out
}

// ----------------------------------------------------------------------
// Linear SVR
// ----------------------------------------------------------------------

/// Linear support vector regression with an epsilon-insensitive loss,
/// trained by SGD. One linear model per forecast horizon over a sensor's own
/// lag window (weights shared across sensors), the classic per-series SVR
/// setup of the traffic-forecasting literature.
pub struct LinearSvr {
    epsilon: f32,
    lr: f32,
    l2: f32,
    epochs: usize,
    max_samples: usize,
    /// `[tf, th + 1]` weights (+ bias), normalized scale.
    weights: Option<Array>,
    seed: u64,
}

impl LinearSvr {
    /// New unfitted SVR with sensible defaults.
    pub fn new() -> Self {
        Self {
            epsilon: 0.05,
            lr: 0.01,
            l2: 1e-4,
            epochs: 5,
            max_samples: 20_000,
            weights: None,
            seed: 13,
        }
    }
}

impl Default for LinearSvr {
    fn default() -> Self {
        Self::new()
    }
}

impl ClassicalForecaster for LinearSvr {
    fn fit(&mut self, data: &WindowedDataset) {
        let raw = data.data();
        let scaler = data.scaler();
        let (train_end, _) = data.split_bounds();
        let (th, tf, n) = (data.th(), data.tf(), data.num_nodes());
        let feat = th + 1;
        let mut w = vec![0f32; tf * feat];
        let mut rng = StdRng::seed_from_u64(self.seed);
        let norm =
            |t: usize, i: usize| -> f32 { (raw.values.at(&[t, i]) - scaler.mean()) / scaler.std() };
        let usable = train_end.saturating_sub(th + tf);
        assert!(usable > 0, "not enough training data for SVR");
        let samples = usable * n;
        let draws = samples.min(self.max_samples);
        for _ in 0..self.epochs {
            for _ in 0..draws {
                let start = rng.gen_range(0..usable);
                let node = rng.gen_range(0..n);
                let x: Vec<f32> = (0..th).map(|k| norm(start + k, node)).collect();
                for h in 0..tf {
                    let y = norm(start + th + h, node);
                    let wrow = &mut w[h * feat..(h + 1) * feat];
                    let pred: f32 = wrow[..th]
                        .iter()
                        .zip(&x)
                        .map(|(wv, xv)| wv * xv)
                        .sum::<f32>()
                        + wrow[th];
                    let err = pred - y;
                    // Epsilon-insensitive subgradient.
                    let g = if err > self.epsilon {
                        1.0
                    } else if err < -self.epsilon {
                        -1.0
                    } else {
                        0.0
                    };
                    for (k, xv) in x.iter().enumerate() {
                        wrow[k] -= self.lr * (g * xv + self.l2 * wrow[k]);
                    }
                    wrow[th] -= self.lr * g;
                }
            }
        }
        self.weights = Some(crate::error::require(
            Array::from_vec(&[tf, feat], w),
            "weights shape",
        ));
    }

    fn predict(&self, data: &WindowedDataset, t_end: usize) -> Array {
        let w = crate::error::required(
            self.weights.as_ref(),
            "LinearSvr::fit() must run before predict()",
        );
        let raw = data.data();
        let scaler = data.scaler();
        let (th, tf, n) = (data.th(), data.tf(), data.num_nodes());
        let mut out = Array::zeros(&[tf, n]);
        for i in 0..n {
            let x: Vec<f32> = (0..th)
                .map(|k| (raw.values.at(&[t_end - th + k, i]) - scaler.mean()) / scaler.std())
                .collect();
            for h in 0..tf {
                let pred: f32 = (0..th).map(|k| w.at(&[h, k]) * x[k]).sum::<f32>() + w.at(&[h, th]);
                out.set(&[h, i], pred * scaler.std() + scaler.mean());
            }
        }
        out
    }

    fn name(&self) -> String {
        "SVR".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2stgnn_data::{simulate, SimulatorConfig};

    fn dataset() -> WindowedDataset {
        let mut cfg = SimulatorConfig::tiny();
        cfg.num_nodes = 8;
        cfg.num_steps = 7 * 288;
        WindowedDataset::new(simulate(&cfg), 12, 12, (0.7, 0.1, 0.2))
    }

    #[test]
    fn solve_multi_identity_and_known() {
        // A = I -> W = B.
        let a = vec![1., 0., 0., 1.];
        let b = vec![3., 4.];
        assert_eq!(solve_multi(&a, &b, 2, 1), vec![3., 4.]);
        // 2x2 system.
        let a = vec![2., 1., 1., 3.];
        let b = vec![5., 10.];
        let w = solve_multi(&a, &b, 2, 1);
        assert!((2.0 * w[0] + w[1] - 5.0).abs() < 1e-9);
        assert!((w[0] + 3.0 * w[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn solve_multi_rejects_singular() {
        let a = vec![1., 1., 1., 1.];
        let b = vec![1., 2.];
        solve_multi(&a, &b, 2, 1);
    }

    #[test]
    fn ha_beats_trivial_zero_prediction() {
        let data = dataset();
        let mut ha = HistoricalAverage::new();
        ha.fit(&data);
        let (pred, target, horizons) = evaluate_classical(&ha, &data, Split::Test, 0.0);
        assert_eq!(pred.shape(), target.shape());
        let mae = horizons[0].1.mae;
        let naive_mae =
            metrics::Metrics::compute(&vec![0.0; target.numel()], target.data(), 0.0).mae;
        assert!(mae < naive_mae * 0.3, "HA MAE {mae} vs naive {naive_mae}");
    }

    #[test]
    fn ha_prediction_is_periodic() {
        let data = dataset();
        let mut ha = HistoricalAverage::new();
        ha.fit(&data);
        let start = data.window_starts(Split::Test)[0];
        let p1 = ha.predict(&data, start + 12);
        let p2 = ha.predict(&data, start + 12 + 288); // same weekday class? may differ
        assert_eq!(p1.shape(), &[12, 8]);
        assert_eq!(p2.shape(), &[12, 8]);
    }

    #[test]
    fn var_one_step_beats_ha_short_horizon() {
        let data = dataset();
        let mut var = VectorAutoRegression::new(3, 1.0);
        var.fit(&data);
        let mut ha = HistoricalAverage::new();
        ha.fit(&data);
        let (_, _, var_h) = evaluate_classical(&var, &data, Split::Test, 0.0);
        let (_, _, ha_h) = evaluate_classical(&ha, &data, Split::Test, 0.0);
        // At horizon 3 the autoregressive structure should beat a pure
        // periodic average on this strongly autocorrelated signal.
        assert!(
            var_h[0].1.mae < ha_h[0].1.mae,
            "VAR {} !< HA {}",
            var_h[0].1.mae,
            ha_h[0].1.mae
        );
    }

    #[test]
    fn var_error_grows_with_horizon() {
        let data = dataset();
        let mut var = VectorAutoRegression::new(2, 1.0);
        var.fit(&data);
        let (_, _, h) = evaluate_classical(&var, &data, Split::Test, 0.0);
        assert!(h[0].1.mae <= h[2].1.mae, "horizon 3 worse than 12?");
    }

    #[test]
    fn svr_fits_and_predicts_reasonably() {
        let data = dataset();
        let mut svr = LinearSvr::new();
        svr.fit(&data);
        let (_, target, h) = evaluate_classical(&svr, &data, Split::Test, 0.0);
        let mean = target.mean_all();
        assert!(
            h[0].1.mae < mean * 0.25,
            "SVR MAE {} vs mean {mean}",
            h[0].1.mae
        );
    }

    #[test]
    fn names() {
        assert_eq!(HistoricalAverage::new().name(), "HA");
        assert_eq!(VectorAutoRegression::new(3, 1.0).name(), "VAR(3)");
        assert_eq!(LinearSvr::new().name(), "SVR");
    }

    #[test]
    #[should_panic(expected = "fit() must run")]
    fn predict_before_fit_panics() {
        let data = dataset();
        HistoricalAverage::new().predict(&data, 12);
    }
}
