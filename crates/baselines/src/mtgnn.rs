//! MTGNN-lite baseline (Wu et al., KDD 2020): uni-directional adaptive graph
//! learning, mix-hop propagation in the spatial module, and a dilated
//! inception temporal module with residual/skip connections.

use d2stgnn_core::TrafficModel;
use d2stgnn_data::Batch;
use d2stgnn_tensor::nn::{xavier_uniform, CausalConv1d, Linear, Mlp, Module};
use d2stgnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Mix-hop propagation (MTGNN Eq. 5-ish): `H^(k) = β H_in + (1-β) Ã H^(k-1)`,
/// hop outputs concatenated and linearly mixed.
struct MixHop {
    mix: Linear,
    hops: usize,
    beta: f32,
}

impl MixHop {
    fn new<R: Rng>(d: usize, hops: usize, beta: f32, rng: &mut R) -> Self {
        Self {
            mix: Linear::new(d * (hops + 1), d, true, rng),
            hops,
            beta,
        }
    }

    /// `x`: `[B', N, d]`, `a`: row-normalized adjacency `[N, N]`.
    fn forward(&self, x: &Tensor, a: &Tensor) -> Tensor {
        let mut states = vec![x.clone()];
        let mut h = x.clone();
        for _ in 0..self.hops {
            h = x.scale(self.beta).add(&a.matmul(&h).scale(1.0 - self.beta));
            states.push(h.clone());
        }
        let refs: Vec<&Tensor> = states.iter().collect();
        self.mix.forward(&Tensor::concat(&refs, 2))
    }
}

impl Module for MixHop {
    fn parameters(&self) -> Vec<Tensor> {
        self.mix.parameters()
    }
}

/// Dilated inception: two kernel-2 causal convolutions with different
/// dilations whose (time-aligned) outputs are concatenated channel-wise.
struct DilatedInception {
    short: CausalConv1d,
    long: CausalConv1d,
    mix: Linear,
}

impl DilatedInception {
    fn new<R: Rng>(d: usize, rng: &mut R) -> Self {
        Self {
            short: CausalConv1d::new(d, d, 1, rng),
            long: CausalConv1d::new(d, d, 2, rng),
            mix: Linear::new(2 * d, d, true, rng),
        }
    }

    /// `x`: `[B', T, d]` -> `[B', T - 2, d]` (aligned to the longest branch).
    fn forward(&self, x: &Tensor) -> Tensor {
        let s = self.short.forward(x); // T - 1
        let l = self.long.forward(x); // T - 2
        let ts = s.shape()[1];
        let tl = l.shape()[1];
        let s_aligned = s.slice_axis(1, ts - tl, ts);
        self.mix
            .forward(&Tensor::concat(&[&s_aligned, &l], 2))
            .tanh()
    }
}

impl Module for DilatedInception {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.short.parameters();
        p.extend(self.long.parameters());
        p.extend(self.mix.parameters());
        p
    }
}

struct MtBlock {
    temporal: DilatedInception,
    spatial: MixHop,
    skip: Linear,
}

/// MTGNN-lite.
pub struct Mtgnn {
    input_proj: Linear,
    blocks: Vec<MtBlock>,
    e1: Tensor,
    e2: Tensor,
    alpha: f32,
    head: Mlp,
    num_nodes: usize,
    d: usize,
    tf: usize,
}

impl Mtgnn {
    /// Build with hidden width `d` and 2 spatio-temporal blocks.
    pub fn new<R: Rng>(num_nodes: usize, d: usize, tf: usize, rng: &mut R) -> Self {
        let blocks = (0..2)
            .map(|_| MtBlock {
                temporal: DilatedInception::new(d, rng),
                spatial: MixHop::new(d, 2, 0.05, rng),
                skip: Linear::new(d, d, true, rng),
            })
            .collect();
        Self {
            input_proj: Linear::new(1, d, true, rng),
            blocks,
            e1: Tensor::parameter(xavier_uniform(&[num_nodes, 10], rng)),
            e2: Tensor::parameter(xavier_uniform(&[num_nodes, 10], rng)),
            alpha: 3.0,
            head: Mlp::new(d, 2 * d, tf, rng),
            num_nodes,
            d,
            tf,
        }
    }

    /// MTGNN's uni-directional adaptive adjacency:
    /// `A = softmax(ReLU(tanh(α(E1 E2ᵀ - E2 E1ᵀ))))` — antisymmetric before
    /// the ReLU, so information flows one way between any learned pair.
    fn learned_adjacency(&self) -> Tensor {
        let m1 = self.e1.matmul(&self.e2.transpose());
        let m2 = self.e2.matmul(&self.e1.transpose());
        m1.sub(&m2).scale(self.alpha).tanh().relu().softmax(1)
    }
}

impl TrafficModel for Mtgnn {
    fn forward(&self, batch: &Batch, _training: bool, _rng: &mut StdRng) -> Tensor {
        let shape = batch.x.shape();
        let (b, th, n, _c) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(n, self.num_nodes, "node count mismatch");
        let d = self.d;
        let a = self.learned_adjacency();

        let mut x = self.input_proj.forward(&Tensor::constant(batch.x.clone()));
        let mut t = th;
        let mut skip_sum: Option<Tensor> = None;
        for block in &self.blocks {
            if t <= 2 {
                break;
            }
            // Temporal: dilated inception per node.
            let per_node = x.permute(&[0, 2, 1, 3]).reshape(&[b * n, t, d]);
            let tc = block.temporal.forward(&per_node);
            let t2 = tc.shape()[1];
            // Skip from the temporal stage (mean over remaining time).
            let s = block.skip.forward(&tc.mean_axis(1, false));
            skip_sum = Some(match skip_sum {
                Some(acc) => acc.add(&s),
                None => s,
            });
            // Spatial: mix-hop over the learned graph at each step.
            let sp_in = tc
                .reshape(&[b, n, t2, d])
                .permute(&[0, 2, 1, 3])
                .reshape(&[b * t2, n, d]);
            let z = block.spatial.forward(&sp_in, &a);
            // Residual.
            let cropped = x.slice_axis(1, t - t2, t).reshape(&[b * t2, n, d]);
            x = z.add(&cropped).relu().reshape(&[b, t2, n, d]);
            t = t2;
        }
        let skip = crate::error::required(skip_sum, "at least one block ran").relu();
        self.head
            .forward(&skip)
            .reshape(&[b, n, self.tf])
            .permute(&[0, 2, 1])
            .reshape(&[b, self.tf, n, 1])
    }

    fn name(&self) -> String {
        "MTGNN".to_string()
    }

    fn horizon(&self) -> usize {
        self.tf
    }
}

impl Module for Mtgnn {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.input_proj.parameters();
        for blk in &self.blocks {
            p.extend(blk.temporal.parameters());
            p.extend(blk.spatial.parameters());
            p.extend(blk.skip.parameters());
        }
        p.push(self.e1.clone());
        p.push(self.e2.clone());
        p.extend(self.head.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2stgnn_data::{simulate, SimulatorConfig, Split, WindowedDataset};
    use d2stgnn_tensor::Array;
    use rand::SeedableRng;

    fn setup() -> (Mtgnn, WindowedDataset, StdRng) {
        let mut cfg = SimulatorConfig::tiny();
        cfg.num_nodes = 6;
        cfg.num_steps = 288;
        cfg.knn = 2;
        let data = WindowedDataset::new(simulate(&cfg), 12, 12, (0.6, 0.2, 0.2));
        let mut rng = StdRng::seed_from_u64(0);
        let model = Mtgnn::new(6, 8, 12, &mut rng);
        (model, data, rng)
    }

    #[test]
    fn forward_shape() {
        let (model, data, mut rng) = setup();
        let batch = data.batch(Split::Train, &[0, 1]);
        let pred = model.forward(&batch, false, &mut rng);
        assert_eq!(pred.shape(), vec![2, 12, 6, 1]);
        assert!(!pred.value().has_non_finite());
    }

    #[test]
    fn learned_adjacency_is_row_stochastic_and_unidirectional_before_softmax() {
        let (model, _, _) = setup();
        let a = model.learned_adjacency().value();
        for r in 0..6 {
            let sum: f32 = a.data()[r * 6..(r + 1) * 6].iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
        // Pre-softmax the matrix is antisymmetric-ReLU: at most one of
        // (i,j)/(j,i) is non-zero. Check on the raw scores.
        let m1 = model.e1.matmul(&model.e2.transpose());
        let m2 = model.e2.matmul(&model.e1.transpose());
        let raw = m1.sub(&m2).scale(3.0).tanh().relu().value();
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    assert!(
                        raw.at(&[i, j]) == 0.0 || raw.at(&[j, i]) == 0.0,
                        "both directions active at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn mixhop_beta_keeps_input_share() {
        let mut rng = StdRng::seed_from_u64(1);
        let mh = MixHop::new(4, 2, 1.0, &mut rng); // beta=1: no propagation
        let x = Tensor::constant(Array::randn(&[2, 3, 4], &mut rng));
        let a = Tensor::constant(Array::zeros(&[3, 3]));
        // With beta=1 every hop equals the input: output = mix(concat(x,x,x)).
        let y = mh.forward(&x, &a);
        assert_eq!(y.shape(), vec![2, 3, 4]);
    }

    #[test]
    fn training_step_reduces_loss() {
        let (model, data, mut rng) = setup();
        let batch = data.batch(Split::Train, &[0, 1]);
        let target = Tensor::constant(data.scaler().transform(&batch.y));
        let loss_of = |m: &Mtgnn, rng: &mut StdRng| {
            d2stgnn_tensor::losses::mae_loss(&m.forward(&batch, true, rng), &target)
        };
        let l0 = loss_of(&model, &mut rng);
        l0.backward();
        use d2stgnn_tensor::optim::{Adam, Optimizer};
        let mut opt = Adam::new(model.parameters(), 0.01);
        opt.step();
        assert!(loss_of(&model, &mut rng).item() < l0.item());
    }
}
