//! DGCRN-lite baseline (Li et al. 2021): a dynamic-graph convolutional
//! recurrent network. Like DCRNN it is a DCGRU seq2seq, but at every step a
//! hyper-network generates a *dynamic* adjacency from the current input and
//! hidden state (filtered node embeddings), which augments the static road
//! graph inside the cell's diffusion convolution.
//!
//! With the dynamic generator disabled this collapses to DCRNN — exactly
//! the DGCRN† variant the paper uses in Table 4.

use crate::dcrnn::DiffusionConv;
use d2stgnn_core::TrafficModel;
use d2stgnn_data::Batch;
use d2stgnn_graph::TrafficNetwork;
use d2stgnn_tensor::nn::{xavier_uniform, Linear, Module};
use d2stgnn_tensor::{Array, Tensor};
use rand::rngs::StdRng;
use rand::Rng;

/// Hyper-network that generates a per-sample dynamic adjacency from the
/// step's `[x ‖ h]` features: node filters modulate learned embeddings, and
/// their inner products (ReLU + row softmax) form the graph.
struct GraphGenerator {
    filter1: Linear,
    filter2: Linear,
    e1: Tensor,
    e2: Tensor,
    emb: usize,
}

impl GraphGenerator {
    fn new<R: Rng>(n: usize, c_in: usize, emb: usize, rng: &mut R) -> Self {
        Self {
            filter1: Linear::new(c_in, emb, true, rng),
            filter2: Linear::new(c_in, emb, true, rng),
            e1: Tensor::parameter(xavier_uniform(&[n, emb], rng)),
            e2: Tensor::parameter(xavier_uniform(&[n, emb], rng)),
            emb,
        }
    }

    /// `xh`: `[B, N, c_in]` -> dynamic adjacency `[B, N, N]`, row-stochastic.
    fn forward(&self, xh: &Tensor) -> Tensor {
        let shape = xh.shape();
        let (b, n) = (shape[0], shape[1]);
        let f1 = self.filter1.forward(xh).tanh(); // [B, N, e]
        let f2 = self.filter2.forward(xh).tanh();
        let e1 = self
            .e1
            .reshape(&[1, n, self.emb])
            .broadcast_to(&[b, n, self.emb]);
        let e2 = self
            .e2
            .reshape(&[1, n, self.emb])
            .broadcast_to(&[b, n, self.emb]);
        let src = f1.mul(&e1);
        let dst = f2.mul(&e2);
        src.matmul(&dst.transpose()).relu().softmax(2)
    }
}

impl Module for GraphGenerator {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.filter1.parameters();
        p.extend(self.filter2.parameters());
        p.push(self.e1.clone());
        p.push(self.e2.clone());
        p
    }
}

/// A DCGRU cell whose candidate path additionally convolves over the
/// generated dynamic graph.
struct DgcrnCell {
    conv_gates: DiffusionConv,
    conv_cand: DiffusionConv,
    dyn_gates: Linear,
    dyn_cand: Linear,
    generator: Option<GraphGenerator>,
    hidden: usize,
}

impl DgcrnCell {
    fn new<R: Rng>(
        network: &TrafficNetwork,
        c_in: usize,
        hidden: usize,
        k: usize,
        dynamic: bool,
        rng: &mut R,
    ) -> Self {
        Self {
            conv_gates: DiffusionConv::new(network, k, c_in + hidden, 2 * hidden, rng),
            conv_cand: DiffusionConv::new(network, k, c_in + hidden, hidden, rng),
            dyn_gates: Linear::new(c_in + hidden, 2 * hidden, false, rng),
            dyn_cand: Linear::new(c_in + hidden, hidden, false, rng),
            generator: dynamic
                .then(|| GraphGenerator::new(network.num_nodes(), c_in + hidden, 8, rng)),
            hidden,
        }
    }

    fn step(&self, x: &Tensor, h: &Tensor) -> Tensor {
        let xh = Tensor::concat(&[x, h], 2);
        let mut gates = self.conv_gates.forward(&xh);
        let dyn_a = self.generator.as_ref().map(|g| g.forward(&xh));
        if let Some(a) = &dyn_a {
            gates = gates.add(&self.dyn_gates.forward(&a.matmul(&xh)));
        }
        let gates = gates.sigmoid();
        let r = gates.slice_axis(2, 0, self.hidden);
        let u = gates.slice_axis(2, self.hidden, 2 * self.hidden);
        let cand_in = Tensor::concat(&[x, &r.mul(h)], 2);
        let mut cand = self.conv_cand.forward(&cand_in);
        if let Some(a) = &dyn_a {
            cand = cand.add(&self.dyn_cand.forward(&a.matmul(&cand_in)));
        }
        let c = cand.tanh();
        let ones = Tensor::constant(Array::ones(&u.shape()));
        u.mul(h).add(&ones.sub(&u).mul(&c))
    }
}

impl Module for DgcrnCell {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.conv_gates.parameters();
        p.extend(self.conv_cand.parameters());
        if let Some(g) = &self.generator {
            p.extend(self.dyn_gates.parameters());
            p.extend(self.dyn_cand.parameters());
            p.extend(g.parameters());
        }
        p
    }
}

/// DGCRN-lite seq2seq.
pub struct Dgcrn {
    encoder: DgcrnCell,
    decoder: DgcrnCell,
    output: Linear,
    num_nodes: usize,
    hidden: usize,
    tf: usize,
    dynamic: bool,
}

impl Dgcrn {
    /// Build; `dynamic = false` yields the DGCRN† (static graph) variant.
    pub fn new<R: Rng>(
        network: &TrafficNetwork,
        hidden: usize,
        k: usize,
        tf: usize,
        dynamic: bool,
        rng: &mut R,
    ) -> Self {
        Self {
            encoder: DgcrnCell::new(network, 1, hidden, k, dynamic, rng),
            decoder: DgcrnCell::new(network, 1, hidden, k, dynamic, rng),
            output: Linear::new(hidden, 1, true, rng),
            num_nodes: network.num_nodes(),
            hidden,
            tf,
            dynamic,
        }
    }
}

impl TrafficModel for Dgcrn {
    fn forward(&self, batch: &Batch, _training: bool, _rng: &mut StdRng) -> Tensor {
        let shape = batch.x.shape();
        let (b, th, n, c) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(n, self.num_nodes, "node count mismatch");
        assert_eq!(c, 1, "DGCRN-lite expects one channel");
        let x = Tensor::constant(batch.x.clone());
        let mut h = Tensor::constant(Array::zeros(&[b, n, self.hidden]));
        for t in 0..th {
            let xt = x.slice_axis(1, t, t + 1).reshape(&[b, n, 1]);
            h = self.encoder.step(&xt, &h);
        }
        let mut inp = Tensor::constant(Array::zeros(&[b, n, 1]));
        let mut outs = Vec::with_capacity(self.tf);
        for _ in 0..self.tf {
            h = self.decoder.step(&inp, &h);
            let pred = self.output.forward(&h);
            outs.push(pred.clone());
            inp = pred;
        }
        let refs: Vec<&Tensor> = outs.iter().collect();
        Tensor::stack(&refs, 1)
    }

    fn name(&self) -> String {
        if self.dynamic {
            "DGCRN".to_string()
        } else {
            "DGCRN+".to_string() // dagger: static-graph variant of Table 4
        }
    }

    fn horizon(&self) -> usize {
        self.tf
    }
}

impl Module for Dgcrn {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.encoder.parameters();
        p.extend(self.decoder.parameters());
        p.extend(self.output.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2stgnn_data::{simulate, SimulatorConfig, Split, WindowedDataset};
    use rand::SeedableRng;

    fn setup(dynamic: bool) -> (Dgcrn, WindowedDataset, StdRng) {
        let mut cfg = SimulatorConfig::tiny();
        cfg.num_nodes = 6;
        cfg.num_steps = 288;
        cfg.knn = 2;
        let data = WindowedDataset::new(simulate(&cfg), 12, 12, (0.6, 0.2, 0.2));
        let mut rng = StdRng::seed_from_u64(0);
        let model = Dgcrn::new(&data.data().network.clone(), 10, 2, 12, dynamic, &mut rng);
        (model, data, rng)
    }

    #[test]
    fn forward_shape_both_variants() {
        for dynamic in [true, false] {
            let (model, data, mut rng) = setup(dynamic);
            let batch = data.batch(Split::Train, &[0, 1]);
            let pred = model.forward(&batch, false, &mut rng);
            assert_eq!(pred.shape(), vec![2, 12, 6, 1]);
            assert!(!pred.value().has_non_finite());
        }
    }

    #[test]
    fn dynamic_variant_has_more_parameters_and_different_name() {
        let (dynamic, _, _) = setup(true);
        let (static_g, _, _) = setup(false);
        assert!(dynamic.num_parameters() > static_g.num_parameters());
        assert_eq!(dynamic.name(), "DGCRN");
        assert_eq!(static_g.name(), "DGCRN+");
    }

    #[test]
    fn generated_graph_is_row_stochastic_and_input_dependent() {
        let mut rng = StdRng::seed_from_u64(1);
        let gen = GraphGenerator::new(5, 3, 4, &mut rng);
        let xh0 = Array::randn(&[2, 5, 3], &mut rng);
        let a0 = gen.forward(&Tensor::constant(xh0.clone())).value();
        for bi in 0..2 {
            for r in 0..5 {
                let s: f32 = (0..5).map(|c| a0.at(&[bi, r, c])).sum();
                assert!((s - 1.0).abs() < 1e-4);
            }
        }
        let mut xh1 = xh0;
        xh1.data_mut()[0] += 5.0;
        let a1 = gen.forward(&Tensor::constant(xh1)).value();
        assert_ne!(a0.data(), a1.data(), "graph must react to the signal");
    }

    #[test]
    fn training_step_reduces_loss() {
        let (model, data, rng) = setup(true);
        let batch = data.batch(Split::Train, &[0, 1]);
        let target = Tensor::constant(data.scaler().transform(&batch.y));
        let loss_of = |m: &Dgcrn, rng: &mut StdRng| {
            d2stgnn_tensor::losses::mae_loss(&m.forward(&batch, true, rng), &target)
        };
        // Evaluate both losses from the same rng state so dropout masks are
        // identical and the comparison isolates the parameter update.
        let l0 = loss_of(&model, &mut rng.clone());
        l0.backward();
        use d2stgnn_tensor::optim::{Adam, Optimizer};
        // Adam's first step is ~lr * sign(grad) per element, so keep lr small
        // enough not to overshoot on this tiny model.
        let mut opt = Adam::new(model.parameters(), 1e-3);
        opt.step();
        assert!(loss_of(&model, &mut rng.clone()).item() < l0.item());
    }
}
