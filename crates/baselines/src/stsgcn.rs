//! STSGCN-lite baseline (Song et al., AAAI 2020): spatial-temporal
//! synchronous graph convolution — a block adjacency over a 3-step window
//! couples each node with its neighbours AND its own adjacent-in-time
//! copies, so one graph convolution captures localized spatial-temporal
//! correlations synchronously.

use d2stgnn_core::TrafficModel;
use d2stgnn_data::Batch;
use d2stgnn_graph::{transition, TrafficNetwork};
use d2stgnn_tensor::nn::{Linear, Module};
use d2stgnn_tensor::{Array, Tensor};
use rand::rngs::StdRng;
use rand::Rng;

/// Build the `3N x 3N` localized spatial-temporal block adjacency: diagonal
/// blocks are the (row-normalized) spatial graph with self-loops; the
/// off-diagonal blocks adjacent in time are identity connections.
fn block_adjacency(p: &Array, n: usize) -> Array {
    let mut big = Array::zeros(&[3 * n, 3 * n]);
    for ti in 0..3usize {
        for tj in 0..3usize {
            for i in 0..n {
                for j in 0..n {
                    let v = if ti == tj {
                        // Spatial edges + self-loop within a step.
                        if i == j {
                            1.0
                        } else {
                            p.at(&[i, j])
                        }
                    } else if ti.abs_diff(tj) == 1 && i == j {
                        // Same sensor, adjacent time step.
                        1.0
                    } else {
                        0.0
                    };
                    if v != 0.0 {
                        big.set(&[ti * n + i, tj * n + j], v);
                    }
                }
            }
        }
    }
    transition::row_normalize(&big)
}

/// One synchronous layer: two stacked graph convolutions over the block
/// adjacency with ReLU, then the middle time-slice is extracted (STSGCN's
/// "cropping").
struct SyncLayer {
    w1: Linear,
    w2: Linear,
}

impl SyncLayer {
    fn new<R: Rng>(d: usize, rng: &mut R) -> Self {
        Self {
            w1: Linear::new(d, d, true, rng),
            w2: Linear::new(d, d, true, rng),
        }
    }

    /// `x`: `[B', 3N, d]` -> middle slice `[B', N, d]`.
    fn forward(&self, x: &Tensor, big_a: &Tensor, n: usize) -> Tensor {
        let h = self.w1.forward(&big_a.matmul(x)).relu();
        let h = self.w2.forward(&big_a.matmul(&h)).relu();
        h.slice_axis(1, n, 2 * n)
    }
}

impl Module for SyncLayer {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.w1.parameters();
        p.extend(self.w2.parameters());
        p
    }
}

/// STSGCN-lite: the synchronous layer slides over the window (stride 1),
/// shrinking time by 2 per application; two stacked sliding stages feed a
/// per-node multi-step head.
pub struct Stsgcn {
    input_proj: Linear,
    layers: Vec<SyncLayer>,
    big_a: Tensor,
    head: Linear,
    num_nodes: usize,
    d: usize,
    tf: usize,
}

impl Stsgcn {
    /// Build the model.
    pub fn new<R: Rng>(network: &TrafficNetwork, d: usize, tf: usize, rng: &mut R) -> Self {
        let p = transition::forward_transition(&network.adjacency());
        let n = network.num_nodes();
        Self {
            input_proj: Linear::new(1, d, true, rng),
            layers: (0..2).map(|_| SyncLayer::new(d, rng)).collect(),
            big_a: Tensor::constant(block_adjacency(&p, n)),
            head: Linear::new(d, tf, true, rng),
            num_nodes: n,
            d,
            tf,
        }
    }

    /// Slide one synchronous layer over `[B, T, N, d]` -> `[B, T-2, N, d]`.
    fn slide(&self, layer: &SyncLayer, x: &Tensor) -> Tensor {
        let shape = x.shape();
        let (b, t, n, d) = (shape[0], shape[1], shape[2], shape[3]);
        assert!(t >= 3, "window too short for a 3-step synchronous layer");
        let mut outs = Vec::with_capacity(t - 2);
        for s in 0..t - 2 {
            // [B, 3, N, d] -> [B, 3N, d]
            let win = x.slice_axis(1, s, s + 3).reshape(&[b, 3 * n, d]);
            outs.push(layer.forward(&win, &self.big_a, n).reshape(&[b, 1, n, d]));
        }
        let refs: Vec<&Tensor> = outs.iter().collect();
        Tensor::concat(&refs, 1)
    }
}

impl TrafficModel for Stsgcn {
    fn forward(&self, batch: &Batch, _training: bool, _rng: &mut StdRng) -> Tensor {
        let shape = batch.x.shape();
        let (b, _th, n, _c) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(n, self.num_nodes, "node count mismatch");
        let mut h = self.input_proj.forward(&Tensor::constant(batch.x.clone()));
        for layer in &self.layers {
            h = self.slide(layer, &h);
        }
        let t = h.shape()[1];
        let last = h.slice_axis(1, t - 1, t).reshape(&[b, n, self.d]);
        self.head
            .forward(&last)
            .permute(&[0, 2, 1])
            .reshape(&[b, self.tf, n, 1])
    }

    fn name(&self) -> String {
        "STSGCN".to_string()
    }

    fn horizon(&self) -> usize {
        self.tf
    }
}

impl Module for Stsgcn {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.input_proj.parameters();
        for l in &self.layers {
            p.extend(l.parameters());
        }
        p.extend(self.head.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2stgnn_data::{simulate, SimulatorConfig, Split, WindowedDataset};
    use rand::SeedableRng;

    fn setup() -> (Stsgcn, WindowedDataset, StdRng) {
        let mut cfg = SimulatorConfig::tiny();
        cfg.num_nodes = 6;
        cfg.num_steps = 288;
        cfg.knn = 2;
        let data = WindowedDataset::new(simulate(&cfg), 12, 12, (0.6, 0.2, 0.2));
        let mut rng = StdRng::seed_from_u64(0);
        let model = Stsgcn::new(&data.data().network.clone(), 8, 12, &mut rng);
        (model, data, rng)
    }

    #[test]
    fn block_adjacency_structure() {
        let p = Array::from_vec(&[2, 2], vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let big = block_adjacency(&p, 2);
        assert_eq!(big.shape(), &[6, 6]);
        // Rows normalized.
        for r in 0..6 {
            let s: f32 = big.data()[r * 6..(r + 1) * 6].iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
        // Temporal self-connection exists between step 0 and step 1 copies.
        assert!(big.at(&[0, 2]) > 0.0);
        // No skip connection between step 0 and step 2 copies.
        assert_eq!(big.at(&[0, 4]), 0.0);
        // Spatial edge within a step.
        assert!(big.at(&[0, 1]) > 0.0);
    }

    #[test]
    fn forward_shape() {
        let (model, data, mut rng) = setup();
        let batch = data.batch(Split::Train, &[0, 1]);
        let pred = model.forward(&batch, false, &mut rng);
        assert_eq!(pred.shape(), vec![2, 12, 6, 1]);
        assert!(!pred.value().has_non_finite());
    }

    #[test]
    fn sliding_shrinks_time_by_two_per_stage() {
        let (model, data, mut rng) = setup();
        let batch = data.batch(Split::Train, &[0]);
        let h = model.input_proj.forward(&Tensor::constant(batch.x.clone()));
        let s1 = model.slide(&model.layers[0], &h);
        assert_eq!(s1.shape()[1], 10);
        let s2 = model.slide(&model.layers[1], &s1);
        assert_eq!(s2.shape()[1], 8);
        let _ = &mut rng;
    }

    #[test]
    fn training_step_reduces_loss() {
        let (model, data, mut rng) = setup();
        let batch = data.batch(Split::Train, &[0, 1]);
        let target = Tensor::constant(data.scaler().transform(&batch.y));
        let loss_of = |m: &Stsgcn, rng: &mut StdRng| {
            d2stgnn_tensor::losses::mae_loss(&m.forward(&batch, true, rng), &target)
        };
        let l0 = loss_of(&model, &mut rng);
        l0.backward();
        use d2stgnn_tensor::optim::{Adam, Optimizer};
        let mut opt = Adam::new(model.parameters(), 0.01);
        opt.step();
        assert!(loss_of(&model, &mut rng).item() < l0.item());
    }
}
