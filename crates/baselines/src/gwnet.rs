//! Graph WaveNet-lite baseline (Wu et al., IJCAI 2019): stacked gated
//! dilated temporal convolutions interleaved with graph convolutions that
//! use both road-network transitions and a self-adaptive adjacency matrix,
//! with skip connections into a joint output head.

use d2stgnn_core::TrafficModel;
use d2stgnn_data::Batch;
use d2stgnn_graph::{transition, TrafficNetwork};
use d2stgnn_tensor::nn::{xavier_uniform, CausalConv1d, Linear, Mlp, Module};
use d2stgnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Graph convolution over pre-computed supports plus the adaptive matrix:
/// `Z = X W_0 + Σ_s Σ_{k=1..K} (P_s^k X) W_{s,k}`.
struct Gcn {
    w0: Linear,
    taps: Vec<Linear>,
    supports: Vec<Tensor>,
    k: usize,
}

impl Gcn {
    fn new<R: Rng>(supports: Vec<Tensor>, k: usize, c: usize, adaptive: bool, rng: &mut R) -> Self {
        let count = (supports.len() + usize::from(adaptive)) * k;
        Self {
            w0: Linear::new(c, c, true, rng),
            taps: (0..count).map(|_| Linear::new(c, c, false, rng)).collect(),
            supports,
            k,
        }
    }

    /// `x` is `[B*T, N, c]`; `adaptive` the softmax adjacency if enabled.
    fn forward(&self, x: &Tensor, adaptive: Option<&Tensor>) -> Tensor {
        let mut out = self.w0.forward(x);
        let mut tap = 0;
        let mut run = |p0: &Tensor, out: &mut Tensor| {
            let mut p = p0.clone();
            for _ in 0..self.k {
                let agg = p.matmul(x);
                *out = out.add(&self.taps[tap].forward(&agg));
                tap += 1;
                p = p.matmul(p0);
            }
        };
        for p0 in &self.supports {
            run(p0, &mut out);
        }
        if let Some(apt) = adaptive {
            run(apt, &mut out);
        }
        out
    }
}

impl Module for Gcn {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.w0.parameters();
        for t in &self.taps {
            p.extend(t.parameters());
        }
        p
    }
}

struct Block {
    filter: CausalConv1d,
    gate: CausalConv1d,
    gcn: Gcn,
    skip: Linear,
}

/// Graph WaveNet-lite.
pub struct GraphWaveNet {
    input_proj: Linear,
    blocks: Vec<Block>,
    e1: Tensor,
    e2: Tensor,
    head: Mlp,
    num_nodes: usize,
    channels: usize,
    tf: usize,
    use_adaptive: bool,
}

impl GraphWaveNet {
    /// Build with residual width `channels`, diffusion order 2, and the
    /// dilation pattern `[1, 2, 1, 2]`.
    pub fn new<R: Rng>(
        network: &TrafficNetwork,
        channels: usize,
        tf: usize,
        use_adaptive: bool,
        rng: &mut R,
    ) -> Self {
        let adj = network.adjacency();
        let supports = vec![
            Tensor::constant(transition::forward_transition(&adj)),
            Tensor::constant(transition::backward_transition(&adj)),
        ];
        let dilations = [1usize, 2, 1, 2];
        let blocks = dilations
            .iter()
            .map(|&d| Block {
                filter: CausalConv1d::new(channels, channels, d, rng),
                gate: CausalConv1d::new(channels, channels, d, rng),
                gcn: Gcn::new(supports.clone(), 2, channels, use_adaptive, rng),
                skip: Linear::new(channels, channels, true, rng),
            })
            .collect();
        let n = network.num_nodes();
        Self {
            input_proj: Linear::new(1, channels, true, rng),
            blocks,
            e1: Tensor::parameter(xavier_uniform(&[n, 10], rng)),
            e2: Tensor::parameter(xavier_uniform(&[n, 10], rng)),
            head: Mlp::new(channels, channels * 2, tf, rng),
            num_nodes: n,
            channels,
            tf,
            use_adaptive,
        }
    }

    fn adaptive(&self) -> Option<Tensor> {
        self.use_adaptive
            .then(|| self.e1.matmul(&self.e2.transpose()).relu().softmax(1))
    }
}

impl TrafficModel for GraphWaveNet {
    fn forward(&self, batch: &Batch, _training: bool, _rng: &mut StdRng) -> Tensor {
        let shape = batch.x.shape();
        let (b, th, n, _c) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(n, self.num_nodes, "node count mismatch");
        let ch = self.channels;
        let apt = self.adaptive();
        // [B, T, N, ch]
        let mut x = self.input_proj.forward(&Tensor::constant(batch.x.clone()));
        let mut t = th;
        let mut skip_sum: Option<Tensor> = None;
        for block in &self.blocks {
            if block.filter.out_len(t) == 0 {
                break;
            }
            // Per-node gated TCN over the time axis.
            let per_node = x.permute(&[0, 2, 1, 3]).reshape(&[b * n, t, ch]);
            let f = block.filter.forward(&per_node).tanh();
            let g = block.gate.forward(&per_node).sigmoid();
            let gated = f.mul(&g); // [B*N, t', ch]
            let t2 = gated.shape()[1];
            // Skip: mean over remaining time.
            let s = block.skip.forward(&gated.mean_axis(1, false)); // [B*N, ch]
            skip_sum = Some(match skip_sum {
                Some(acc) => acc.add(&s),
                None => s,
            });
            // GCN over nodes at each remaining time step.
            let spatial_in = gated
                .reshape(&[b, n, t2, ch])
                .permute(&[0, 2, 1, 3])
                .reshape(&[b * t2, n, ch]);
            let z = block.gcn.forward(&spatial_in, apt.as_ref());
            // Residual: crop x to the new time length and add.
            let cropped = x.slice_axis(1, t - t2, t).reshape(&[b * t2, n, ch]);
            x = z.add(&cropped).relu().reshape(&[b, t2, n, ch]);
            t = t2;
        }
        let skip = crate::error::required(skip_sum, "at least one block ran").relu(); // [B*N, ch]
        let out = self.head.forward(&skip); // [B*N, tf]
        out.reshape(&[b, n, self.tf])
            .permute(&[0, 2, 1])
            .reshape(&[b, self.tf, n, 1])
    }

    fn name(&self) -> String {
        if self.use_adaptive {
            "GWNet".to_string()
        } else {
            "GWNet (w/o apt)".to_string()
        }
    }

    fn horizon(&self) -> usize {
        self.tf
    }
}

impl Module for GraphWaveNet {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.input_proj.parameters();
        for blk in &self.blocks {
            p.extend(blk.filter.parameters());
            p.extend(blk.gate.parameters());
            p.extend(blk.gcn.parameters());
            p.extend(blk.skip.parameters());
        }
        if self.use_adaptive {
            p.push(self.e1.clone());
            p.push(self.e2.clone());
        }
        p.extend(self.head.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2stgnn_data::{simulate, SimulatorConfig, Split, WindowedDataset};
    use rand::SeedableRng;

    fn setup(adaptive: bool) -> (GraphWaveNet, WindowedDataset, StdRng) {
        let mut cfg = SimulatorConfig::tiny();
        cfg.num_nodes = 6;
        cfg.num_steps = 288;
        cfg.knn = 2;
        let data = WindowedDataset::new(simulate(&cfg), 12, 12, (0.6, 0.2, 0.2));
        let mut rng = StdRng::seed_from_u64(0);
        let model = GraphWaveNet::new(&data.data().network.clone(), 8, 12, adaptive, &mut rng);
        (model, data, rng)
    }

    #[test]
    fn forward_shape() {
        let (model, data, mut rng) = setup(true);
        let batch = data.batch(Split::Train, &[0, 1]);
        let pred = model.forward(&batch, false, &mut rng);
        assert_eq!(pred.shape(), vec![2, 12, 6, 1]);
        assert!(!pred.value().has_non_finite());
    }

    #[test]
    fn adaptive_toggle_changes_params_and_name() {
        let (with_apt, _, _) = setup(true);
        let (without, _, _) = setup(false);
        assert!(with_apt.num_parameters() > without.num_parameters());
        assert_eq!(with_apt.name(), "GWNet");
        assert_eq!(without.name(), "GWNet (w/o apt)");
    }

    #[test]
    fn training_step_reduces_loss() {
        let (model, data, mut rng) = setup(true);
        let batch = data.batch(Split::Train, &[0, 1, 2, 3]);
        let target = Tensor::constant(data.scaler().transform(&batch.y));
        let loss_of = |m: &GraphWaveNet, rng: &mut StdRng| {
            d2stgnn_tensor::losses::mae_loss(&m.forward(&batch, true, rng), &target)
        };
        let l0 = loss_of(&model, &mut rng);
        l0.backward();
        use d2stgnn_tensor::optim::{Adam, Optimizer};
        let mut opt = Adam::new(model.parameters(), 0.01);
        opt.step();
        assert!(loss_of(&model, &mut rng).item() < l0.item());
    }

    #[test]
    fn gradients_reach_node_embeddings() {
        let (model, data, mut rng) = setup(true);
        let batch = data.batch(Split::Train, &[0]);
        model.forward(&batch, true, &mut rng).sum_all().backward();
        assert!(model.e1.grad().is_some());
        assert!(model.e2.grad().is_some());
    }
}
