//! The baselines crate's single panic funnel for invariant violations.
//!
//! Baseline models keep the documented panic-on-misuse contract (predicting
//! before fitting, internally inconsistent shapes), but every such abort
//! routes through this module so the `xlint` panic-reachability rule sees
//! exactly one sanctioned funnel for the whole crate.

use std::fmt;

/// The crate's single panic funnel for unrecoverable invariant violations.
#[cold]
#[track_caller]
pub(crate) fn violation(detail: impl fmt::Display) -> ! {
    panic!("{detail}")
}

/// Unwrap a result whose failure is an internal invariant violation.
#[track_caller]
pub(crate) fn require<T, E: fmt::Display>(result: Result<T, E>, context: &str) -> T {
    match result {
        Ok(v) => v,
        Err(e) => violation(format_args!("{context}: {e}")),
    }
}

/// Unwrap an option whose absence is an internal invariant violation —
/// the fit-before-predict contract of the classical baselines.
#[track_caller]
pub(crate) fn required<T>(option: Option<T>, what: &str) -> T {
    match option {
        Some(v) => v,
        None => violation(what),
    }
}
