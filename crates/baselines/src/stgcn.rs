//! STGCN-lite baseline (Yu et al., IJCAI 2018): "sandwich" spatial-temporal
//! blocks — gated temporal convolution, graph convolution, temporal
//! convolution — followed by an output head on the final step.

use d2stgnn_core::TrafficModel;
use d2stgnn_data::Batch;
use d2stgnn_graph::{transition, TrafficNetwork};
use d2stgnn_tensor::nn::{CausalConv1d, Linear, Module};
use d2stgnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

struct StBlock {
    t1_filter: CausalConv1d,
    t1_gate: CausalConv1d,
    spatial: Linear,
    t2_filter: CausalConv1d,
    t2_gate: CausalConv1d,
}

/// STGCN-lite with two spatial-temporal blocks.
pub struct Stgcn {
    input_proj: Linear,
    blocks: Vec<StBlock>,
    p_hat: Tensor,
    head: Linear,
    num_nodes: usize,
    channels: usize,
    tf: usize,
}

impl Stgcn {
    /// Build the model with `channels`-wide hidden features.
    pub fn new<R: Rng>(network: &TrafficNetwork, channels: usize, tf: usize, rng: &mut R) -> Self {
        // Symmetric normalized adjacency with self-loops (first-order
        // Chebyshev approximation), the STGCN convention.
        let adj = network.adjacency();
        let n = network.num_nodes();
        let sym = {
            let mut m = adj.add(&adj.transpose()).scale(0.5);
            for i in 0..n {
                let v = m.at(&[i, i]) + 1.0;
                m.set(&[i, i], v);
            }
            transition::row_normalize(&m)
        };
        let blocks = (0..2)
            .map(|_| StBlock {
                t1_filter: CausalConv1d::new(channels, channels, 1, rng),
                t1_gate: CausalConv1d::new(channels, channels, 1, rng),
                spatial: Linear::new(channels, channels, true, rng),
                t2_filter: CausalConv1d::new(channels, channels, 1, rng),
                t2_gate: CausalConv1d::new(channels, channels, 1, rng),
            })
            .collect();
        Self {
            input_proj: Linear::new(1, channels, true, rng),
            blocks,
            p_hat: Tensor::constant(sym),
            head: Linear::new(channels, tf, true, rng),
            num_nodes: n,
            channels,
            tf,
        }
    }

    fn gated(filter: &CausalConv1d, gate: &CausalConv1d, x: &Tensor) -> Tensor {
        filter.forward(x).tanh().mul(&gate.forward(x).sigmoid())
    }
}

impl TrafficModel for Stgcn {
    fn forward(&self, batch: &Batch, _training: bool, _rng: &mut StdRng) -> Tensor {
        let shape = batch.x.shape();
        let (b, th, n, _c) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(n, self.num_nodes, "node count mismatch");
        let ch = self.channels;
        let mut x = self.input_proj.forward(&Tensor::constant(batch.x.clone()));
        let mut t = th;
        for blk in &self.blocks {
            // Temporal conv 1 (per node).
            let per_node = x.permute(&[0, 2, 1, 3]).reshape(&[b * n, t, ch]);
            let h1 = Self::gated(&blk.t1_filter, &blk.t1_gate, &per_node);
            let t1 = h1.shape()[1];
            // Spatial graph convolution at each step.
            let spatial_in = h1
                .reshape(&[b, n, t1, ch])
                .permute(&[0, 2, 1, 3])
                .reshape(&[b * t1, n, ch]);
            let z = blk.spatial.forward(&self.p_hat.matmul(&spatial_in)).relu();
            // Temporal conv 2.
            let back = z
                .reshape(&[b, t1, n, ch])
                .permute(&[0, 2, 1, 3])
                .reshape(&[b * n, t1, ch]);
            let h2 = Self::gated(&blk.t2_filter, &blk.t2_gate, &back);
            let t2 = h2.shape()[1];
            x = h2.reshape(&[b, n, t2, ch]).permute(&[0, 2, 1, 3]);
            t = t2;
        }
        // Head on the final remaining step, per node.
        let last = x.slice_axis(1, t - 1, t).reshape(&[b, n, ch]);
        self.head
            .forward(&last) // [b, n, tf]
            .permute(&[0, 2, 1])
            .reshape(&[b, self.tf, n, 1])
    }

    fn name(&self) -> String {
        "STGCN".to_string()
    }

    fn horizon(&self) -> usize {
        self.tf
    }
}

impl Module for Stgcn {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.input_proj.parameters();
        for blk in &self.blocks {
            p.extend(blk.t1_filter.parameters());
            p.extend(blk.t1_gate.parameters());
            p.extend(blk.spatial.parameters());
            p.extend(blk.t2_filter.parameters());
            p.extend(blk.t2_gate.parameters());
        }
        p.extend(self.head.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2stgnn_data::{simulate, SimulatorConfig, Split, WindowedDataset};
    use rand::SeedableRng;

    fn setup() -> (Stgcn, WindowedDataset, StdRng) {
        let mut cfg = SimulatorConfig::tiny();
        cfg.num_nodes = 6;
        cfg.num_steps = 288;
        cfg.knn = 2;
        let data = WindowedDataset::new(simulate(&cfg), 12, 12, (0.6, 0.2, 0.2));
        let mut rng = StdRng::seed_from_u64(0);
        let model = Stgcn::new(&data.data().network.clone(), 8, 12, &mut rng);
        (model, data, rng)
    }

    #[test]
    fn forward_shape() {
        let (model, data, mut rng) = setup();
        let batch = data.batch(Split::Train, &[0, 1]);
        let pred = model.forward(&batch, false, &mut rng);
        assert_eq!(pred.shape(), vec![2, 12, 6, 1]);
        assert!(!pred.value().has_non_finite());
    }

    #[test]
    fn training_step_reduces_loss() {
        let (model, data, mut rng) = setup();
        let batch = data.batch(Split::Train, &[0, 1, 2, 3]);
        let target = Tensor::constant(data.scaler().transform(&batch.y));
        let loss_of = |m: &Stgcn, rng: &mut StdRng| {
            d2stgnn_tensor::losses::mae_loss(&m.forward(&batch, true, rng), &target)
        };
        let l0 = loss_of(&model, &mut rng);
        l0.backward();
        use d2stgnn_tensor::optim::{Adam, Optimizer};
        let mut opt = Adam::new(model.parameters(), 0.01);
        opt.step();
        assert!(loss_of(&model, &mut rng).item() < l0.item());
    }

    #[test]
    fn all_parameters_trainable() {
        let (model, data, mut rng) = setup();
        let batch = data.batch(Split::Train, &[0]);
        model.forward(&batch, true, &mut rng).sum_all().backward();
        for (i, p) in model.parameters().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} missing grad");
        }
    }
}
