//! ASTGCN-lite baseline (Guo et al., AAAI 2019): attention-based
//! spatial-temporal graph convolution — a spatial attention matrix modulates
//! the graph convolution and a temporal attention matrix re-weights the time
//! axis, followed by a temporal convolution.

use d2stgnn_core::TrafficModel;
use d2stgnn_data::Batch;
use d2stgnn_graph::{transition, TrafficNetwork};
use d2stgnn_tensor::nn::{CausalConv1d, Linear, Module};
use d2stgnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

struct AstBlock {
    /// Spatial attention projections.
    sq: Linear,
    sk: Linear,
    /// Temporal attention projections.
    tq: Linear,
    tk: Linear,
    /// Graph convolution taps (order 1..=k over the attention-masked P).
    taps: Vec<Linear>,
    w0: Linear,
    /// Temporal convolution after the spatial stage.
    tconv: CausalConv1d,
    k: usize,
}

impl AstBlock {
    fn new<R: Rng>(d: usize, k: usize, rng: &mut R) -> Self {
        Self {
            sq: Linear::new(d, d, false, rng),
            sk: Linear::new(d, d, false, rng),
            tq: Linear::new(d, d, false, rng),
            tk: Linear::new(d, d, false, rng),
            taps: (0..k).map(|_| Linear::new(d, d, false, rng)).collect(),
            w0: Linear::new(d, d, true, rng),
            tconv: CausalConv1d::new(d, d, 1, rng),
            k,
        }
    }

    /// `h`: `[B, T, N, d]`, `p`: static transition `[N, N]`.
    /// Returns `[B, T-1, N, d]` (the temporal conv shrinks time by 1).
    fn forward(&self, h: &Tensor, p: &Tensor) -> Tensor {
        let shape = h.shape();
        let (b, t, n, d) = (shape[0], shape[1], shape[2], shape[3]);
        let scale = 1.0 / (d as f32).sqrt();

        // --- temporal attention: re-weight the time axis per node.
        let per_node = h.permute(&[0, 2, 1, 3]).reshape(&[b * n, t, d]);
        let e = self
            .tq
            .forward(&per_node)
            .matmul(&self.tk.forward(&per_node).transpose())
            .scale(scale)
            .softmax(2); // [B*N, T, T]
        let ht = e
            .matmul(&per_node)
            .reshape(&[b, n, t, d])
            .permute(&[0, 2, 1, 3]); // [B, T, N, d]

        // --- spatial attention: mask the transition matrix per (batch, time).
        let per_time = ht.reshape(&[b * t, n, d]);
        let s = self
            .sq
            .forward(&per_time)
            .matmul(&self.sk.forward(&per_time).transpose())
            .scale(scale)
            .softmax(2); // [B*T, N, N]
        let p_b = p.reshape(&[1, n, n]).broadcast_to(&[b * t, n, n]);
        let masked = p_b.mul(&s);

        // --- graph convolution with the attention-masked supports.
        let mut z = self.w0.forward(&per_time);
        let mut power = masked.clone();
        for tap in &self.taps {
            z = z.add(&tap.forward(&power.matmul(&per_time)));
            if self.k > 1 {
                power = power.matmul(&masked);
            }
        }
        let z = z.relu().reshape(&[b, t, n, d]);

        // --- temporal convolution (per node).
        let tc_in = z.permute(&[0, 2, 1, 3]).reshape(&[b * n, t, d]);
        let out = self.tconv.forward(&tc_in).relu();
        let t2 = out.shape()[1];
        out.reshape(&[b, n, t2, d]).permute(&[0, 2, 1, 3])
    }
}

impl Module for AstBlock {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.sq.parameters();
        p.extend(self.sk.parameters());
        p.extend(self.tq.parameters());
        p.extend(self.tk.parameters());
        for t in &self.taps {
            p.extend(t.parameters());
        }
        p.extend(self.w0.parameters());
        p.extend(self.tconv.parameters());
        p
    }
}

/// ASTGCN-lite with two attention blocks and a per-node output head.
pub struct Astgcn {
    input_proj: Linear,
    blocks: Vec<AstBlock>,
    p: Tensor,
    head: Linear,
    num_nodes: usize,
    tf: usize,
}

impl Astgcn {
    /// Build the model.
    pub fn new<R: Rng>(network: &TrafficNetwork, d: usize, tf: usize, rng: &mut R) -> Self {
        Self {
            input_proj: Linear::new(1, d, true, rng),
            blocks: (0..2).map(|_| AstBlock::new(d, 2, rng)).collect(),
            p: Tensor::constant(transition::forward_transition(&network.adjacency())),
            head: Linear::new(d, tf, true, rng),
            num_nodes: network.num_nodes(),
            tf,
        }
    }
}

impl TrafficModel for Astgcn {
    fn forward(&self, batch: &Batch, _training: bool, _rng: &mut StdRng) -> Tensor {
        let shape = batch.x.shape();
        let (b, _th, n, _c) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(n, self.num_nodes, "node count mismatch");
        let mut h = self.input_proj.forward(&Tensor::constant(batch.x.clone()));
        for block in &self.blocks {
            h = block.forward(&h, &self.p);
        }
        let t = h.shape()[1];
        let d = h.shape()[3];
        let last = h.slice_axis(1, t - 1, t).reshape(&[b, n, d]);
        self.head
            .forward(&last)
            .permute(&[0, 2, 1])
            .reshape(&[b, self.tf, n, 1])
    }

    fn name(&self) -> String {
        "ASTGCN".to_string()
    }

    fn horizon(&self) -> usize {
        self.tf
    }
}

impl Module for Astgcn {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.input_proj.parameters();
        for blk in &self.blocks {
            p.extend(blk.parameters());
        }
        p.extend(self.head.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2stgnn_data::{simulate, SimulatorConfig, Split, WindowedDataset};
    use rand::SeedableRng;

    fn setup() -> (Astgcn, WindowedDataset, StdRng) {
        let mut cfg = SimulatorConfig::tiny();
        cfg.num_nodes = 6;
        cfg.num_steps = 288;
        cfg.knn = 2;
        let data = WindowedDataset::new(simulate(&cfg), 12, 12, (0.6, 0.2, 0.2));
        let mut rng = StdRng::seed_from_u64(0);
        let model = Astgcn::new(&data.data().network.clone(), 8, 12, &mut rng);
        (model, data, rng)
    }

    #[test]
    fn forward_shape() {
        let (model, data, mut rng) = setup();
        let batch = data.batch(Split::Train, &[0, 1]);
        let pred = model.forward(&batch, false, &mut rng);
        assert_eq!(pred.shape(), vec![2, 12, 6, 1]);
        assert!(!pred.value().has_non_finite());
    }

    #[test]
    fn attention_respects_graph_support() {
        // ASTGCN's spatial attention only modulates existing edges: with a
        // disconnected pair, no influence can flow between them through the
        // spatial stage (but temporal attention still mixes a node's own
        // history). Use two isolated nodes to check node independence.
        let mut rng = StdRng::seed_from_u64(1);
        let net = TrafficNetwork::from_adjacency(2, vec![0.0; 4], vec![]);
        let model = Astgcn::new(&net, 4, 4, &mut rng);
        let mut cfg = SimulatorConfig::tiny();
        cfg.num_nodes = 2;
        cfg.knn = 1;
        cfg.num_steps = 288;
        let data = WindowedDataset::new(simulate(&cfg), 12, 4, (0.6, 0.2, 0.2));
        let mut batch = data.batch(Split::Train, &[0]);
        let base = model.forward(&batch, false, &mut rng).value();
        for t in 0..12 {
            let v = batch.x.at(&[0, t, 0, 0]);
            batch.x.set(&[0, t, 0, 0], v + 5.0);
        }
        let bumped = model.forward(&batch, false, &mut rng).value();
        for h in 0..4 {
            assert_eq!(
                base.at(&[0, h, 1, 0]),
                bumped.at(&[0, h, 1, 0]),
                "influence leaked across disconnected nodes"
            );
        }
    }

    #[test]
    fn training_step_reduces_loss() {
        let (model, data, mut rng) = setup();
        let batch = data.batch(Split::Train, &[0, 1]);
        let target = Tensor::constant(data.scaler().transform(&batch.y));
        let loss_of = |m: &Astgcn, rng: &mut StdRng| {
            d2stgnn_tensor::losses::mae_loss(&m.forward(&batch, true, rng), &target)
        };
        let l0 = loss_of(&model, &mut rng);
        l0.backward();
        use d2stgnn_tensor::optim::{Adam, Optimizer};
        let mut opt = Adam::new(model.parameters(), 0.01);
        opt.step();
        assert!(loss_of(&model, &mut rng).item() < l0.item());
    }
}
