//! FC-LSTM baseline (Sutskever et al. 2014, as used by DCRNN's evaluation):
//! an LSTM over the concatenated sensor vector with a fully connected
//! decoder, run sequence-to-sequence with autoregressive decoding. Captures
//! temporal structure but is blind to the road graph.

use d2stgnn_core::TrafficModel;
use d2stgnn_data::Batch;
use d2stgnn_tensor::nn::{Linear, Lstm, Module};
use d2stgnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// FC-LSTM: encode the input window, then decode `T_f` steps feeding each
/// prediction back as the next input.
pub struct FcLstm {
    encoder: Lstm,
    decoder_in: Linear,
    output: Linear,
    num_nodes: usize,
    tf: usize,
}

impl FcLstm {
    /// Build for `num_nodes` sensors with the given hidden width.
    pub fn new<R: Rng>(num_nodes: usize, hidden: usize, tf: usize, rng: &mut R) -> Self {
        Self {
            encoder: Lstm::new(num_nodes, hidden, rng),
            decoder_in: Linear::new(num_nodes, num_nodes, true, rng),
            output: Linear::new(hidden, num_nodes, true, rng),
            num_nodes,
            tf,
        }
    }
}

impl TrafficModel for FcLstm {
    fn forward(&self, batch: &Batch, _training: bool, _rng: &mut StdRng) -> Tensor {
        let shape = batch.x.shape();
        let (b, th, n, c) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(n, self.num_nodes, "node count mismatch");
        assert_eq!(c, 1, "FC-LSTM supports a single channel");
        let x = Tensor::constant(batch.x.clone()).reshape(&[b, th, n]);
        let (_, (mut h, mut cstate)) = self.encoder.forward_with_state(&x, None);
        // Autoregressive decode: first decoder input is the last observation.
        let mut inp = x.slice_axis(1, th - 1, th).reshape(&[b, n]);
        let mut outs = Vec::with_capacity(self.tf);
        for _ in 0..self.tf {
            let step_in = self.decoder_in.forward(&inp).tanh();
            // Reuse the encoder cell for decoding (weight tying keeps the
            // baseline lightweight, standard for seq2seq-lite setups).
            let (h2, c2) = self.encoder.cell().step(&step_in, &h, &cstate);
            h = h2;
            cstate = c2;
            let pred = self.output.forward(&h); // [b, n]
            outs.push(pred.clone());
            inp = pred;
        }
        let refs: Vec<&Tensor> = outs.iter().collect();
        Tensor::stack(&refs, 1).reshape(&[b, self.tf, n, 1])
    }

    fn name(&self) -> String {
        "FC-LSTM".to_string()
    }

    fn horizon(&self) -> usize {
        self.tf
    }
}

impl Module for FcLstm {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.encoder.parameters();
        p.extend(self.decoder_in.parameters());
        p.extend(self.output.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2stgnn_data::{simulate, SimulatorConfig, Split, WindowedDataset};
    use rand::SeedableRng;

    fn setup() -> (FcLstm, WindowedDataset, StdRng) {
        let mut cfg = SimulatorConfig::tiny();
        cfg.num_nodes = 6;
        cfg.num_steps = 288;
        cfg.knn = 2;
        let data = WindowedDataset::new(simulate(&cfg), 12, 12, (0.6, 0.2, 0.2));
        let mut rng = StdRng::seed_from_u64(0);
        let model = FcLstm::new(6, 16, 12, &mut rng);
        (model, data, rng)
    }

    #[test]
    fn forward_shape() {
        let (model, data, mut rng) = setup();
        let batch = data.batch(Split::Train, &[0, 1, 2]);
        let pred = model.forward(&batch, false, &mut rng);
        assert_eq!(pred.shape(), vec![3, 12, 6, 1]);
        assert!(!pred.value().has_non_finite());
    }

    #[test]
    fn training_step_reduces_loss() {
        let (model, data, mut rng) = setup();
        let batch = data.batch(Split::Train, &[0, 1, 2, 3]);
        let target = Tensor::constant(
            data.scaler().transform(&batch.y), // compare in normalized space
        );
        let loss_of = |m: &FcLstm, rng: &mut StdRng| {
            d2stgnn_tensor::losses::mae_loss(&m.forward(&batch, true, rng), &target)
        };
        let l0 = loss_of(&model, &mut rng);
        l0.backward();
        use d2stgnn_tensor::optim::{Adam, Optimizer};
        let mut opt = Adam::new(model.parameters(), 0.01);
        opt.step();
        let l1 = loss_of(&model, &mut rng);
        assert!(l1.item() < l0.item());
    }

    #[test]
    fn gradients_flow() {
        let (model, data, mut rng) = setup();
        let batch = data.batch(Split::Train, &[0]);
        model.forward(&batch, true, &mut rng).sum_all().backward();
        for (i, p) in model.parameters().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} missing grad");
        }
    }
}
