//! DCRNN-lite baseline (Li et al., ICLR 2018): Diffusion Convolutional
//! Gated Recurrent Units in a sequence-to-sequence arrangement. The fully
//! connected layers of a GRU are replaced by diffusion convolutions over the
//! road graph, so spatial and temporal dependencies couple inside the cell.

use d2stgnn_core::TrafficModel;
use d2stgnn_data::Batch;
use d2stgnn_graph::{transition, TrafficNetwork};
use d2stgnn_tensor::nn::{Linear, Module};
use d2stgnn_tensor::{Array, Tensor};
use rand::rngs::StdRng;
use rand::Rng;

/// Bidirectional diffusion convolution:
/// `Θ★X = X W_0 + Σ_{k=1..K} (P_f^k X) W_{f,k} + (P_b^k X) W_{b,k}`.
pub struct DiffusionConv {
    /// Identity tap.
    w0: Linear,
    /// Forward-transition taps, one per order.
    wf: Vec<Linear>,
    /// Backward-transition taps, one per order.
    wb: Vec<Linear>,
    /// Pre-computed `P_f^k` constants.
    pf: Vec<Tensor>,
    /// Pre-computed `P_b^k` constants.
    pb: Vec<Tensor>,
}

impl DiffusionConv {
    /// Build with diffusion order `k` over the given network.
    pub fn new<R: Rng>(
        network: &TrafficNetwork,
        k: usize,
        c_in: usize,
        c_out: usize,
        rng: &mut R,
    ) -> Self {
        assert!(k >= 1, "diffusion order must be >= 1");
        let adj = network.adjacency();
        let p_f = transition::forward_transition(&adj);
        let p_b = transition::backward_transition(&adj);
        let powers = |p: &Array| -> Vec<Tensor> {
            (1..=k)
                .map(|kk| Tensor::constant(transition::matrix_power(p, kk)))
                .collect()
        };
        Self {
            w0: Linear::new(c_in, c_out, true, rng),
            wf: (0..k)
                .map(|_| Linear::new(c_in, c_out, false, rng))
                .collect(),
            wb: (0..k)
                .map(|_| Linear::new(c_in, c_out, false, rng))
                .collect(),
            pf: powers(&p_f),
            pb: powers(&p_b),
        }
    }

    /// Apply to `[B, N, c_in]`, returning `[B, N, c_out]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut out = self.w0.forward(x);
        for (p, w) in self.pf.iter().zip(&self.wf) {
            out = out.add(&w.forward(&p.matmul(x)));
        }
        for (p, w) in self.pb.iter().zip(&self.wb) {
            out = out.add(&w.forward(&p.matmul(x)));
        }
        out
    }
}

impl Module for DiffusionConv {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.w0.parameters();
        for w in self.wf.iter().chain(&self.wb) {
            p.extend(w.parameters());
        }
        p
    }
}

/// One DCGRU cell: GRU gates computed by diffusion convolutions over
/// `[x ‖ h]`.
pub struct DcgruCell {
    conv_gates: DiffusionConv,
    conv_cand: DiffusionConv,
    hidden: usize,
}

impl DcgruCell {
    /// New cell with the given input/hidden widths and diffusion order `k`.
    pub fn new<R: Rng>(
        network: &TrafficNetwork,
        c_in: usize,
        hidden: usize,
        k: usize,
        rng: &mut R,
    ) -> Self {
        Self {
            conv_gates: DiffusionConv::new(network, k, c_in + hidden, 2 * hidden, rng),
            conv_cand: DiffusionConv::new(network, k, c_in + hidden, hidden, rng),
            hidden,
        }
    }

    /// One step: `x` `[B, N, c_in]`, `h` `[B, N, hidden]`.
    pub fn step(&self, x: &Tensor, h: &Tensor) -> Tensor {
        let xh = Tensor::concat(&[x, h], 2);
        let gates = self.conv_gates.forward(&xh).sigmoid();
        let r = gates.slice_axis(2, 0, self.hidden);
        let u = gates.slice_axis(2, self.hidden, 2 * self.hidden);
        let cand_in = Tensor::concat(&[x, &r.mul(h)], 2);
        let c = self.conv_cand.forward(&cand_in).tanh();
        let ones = Tensor::constant(Array::ones(&u.shape()));
        u.mul(h).add(&ones.sub(&u).mul(&c))
    }
}

impl Module for DcgruCell {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.conv_gates.parameters();
        p.extend(self.conv_cand.parameters());
        p
    }
}

/// DCRNN-lite: one-layer DCGRU encoder + autoregressive DCGRU decoder.
pub struct Dcrnn {
    encoder: DcgruCell,
    decoder: DcgruCell,
    output: Linear,
    num_nodes: usize,
    hidden: usize,
    tf: usize,
}

impl Dcrnn {
    /// Build the model.
    pub fn new<R: Rng>(
        network: &TrafficNetwork,
        hidden: usize,
        k: usize,
        tf: usize,
        rng: &mut R,
    ) -> Self {
        Self {
            encoder: DcgruCell::new(network, 1, hidden, k, rng),
            decoder: DcgruCell::new(network, 1, hidden, k, rng),
            output: Linear::new(hidden, 1, true, rng),
            num_nodes: network.num_nodes(),
            hidden,
            tf,
        }
    }
}

impl TrafficModel for Dcrnn {
    fn forward(&self, batch: &Batch, _training: bool, _rng: &mut StdRng) -> Tensor {
        let shape = batch.x.shape();
        let (b, th, n, c) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(n, self.num_nodes, "node count mismatch");
        assert_eq!(c, 1, "DCRNN-lite expects one channel");
        let x = Tensor::constant(batch.x.clone());
        let mut h = Tensor::constant(Array::zeros(&[b, n, self.hidden]));
        for t in 0..th {
            let xt = x.slice_axis(1, t, t + 1).reshape(&[b, n, 1]);
            h = self.encoder.step(&xt, &h);
        }
        // Decoder starts from a GO token (zeros), as in the original.
        let mut inp = Tensor::constant(Array::zeros(&[b, n, 1]));
        let mut outs = Vec::with_capacity(self.tf);
        for _ in 0..self.tf {
            h = self.decoder.step(&inp, &h);
            let pred = self.output.forward(&h); // [b, n, 1]
            outs.push(pred.clone());
            inp = pred;
        }
        let refs: Vec<&Tensor> = outs.iter().collect();
        Tensor::stack(&refs, 1) // [b, tf, n, 1]
    }

    fn name(&self) -> String {
        "DCRNN".to_string()
    }

    fn horizon(&self) -> usize {
        self.tf
    }
}

impl Module for Dcrnn {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.encoder.parameters();
        p.extend(self.decoder.parameters());
        p.extend(self.output.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2stgnn_data::{simulate, SimulatorConfig, Split, WindowedDataset};
    use rand::SeedableRng;

    fn setup() -> (Dcrnn, WindowedDataset, StdRng) {
        let mut cfg = SimulatorConfig::tiny();
        cfg.num_nodes = 6;
        cfg.num_steps = 288;
        cfg.knn = 2;
        let data = WindowedDataset::new(simulate(&cfg), 12, 12, (0.6, 0.2, 0.2));
        let mut rng = StdRng::seed_from_u64(0);
        let model = Dcrnn::new(&data.data().network.clone(), 12, 2, 12, &mut rng);
        (model, data, rng)
    }

    #[test]
    fn diffusion_conv_shapes_and_identity_tap() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = TrafficNetwork::random_geometric(5, 2, 0.02, &mut rng);
        let conv = DiffusionConv::new(&net, 2, 3, 4, &mut rng);
        let x = Tensor::constant(Array::randn(&[2, 5, 3], &mut rng));
        assert_eq!(conv.forward(&x).shape(), vec![2, 5, 4]);
        // 1 identity tap (W+b) + 2 forward + 2 backward weight-only taps.
        assert_eq!(conv.parameters().len(), 2 + 2 + 2);
    }

    #[test]
    fn forward_shape() {
        let (model, data, mut rng) = setup();
        let batch = data.batch(Split::Train, &[0, 1]);
        let pred = model.forward(&batch, false, &mut rng);
        assert_eq!(pred.shape(), vec![2, 12, 6, 1]);
        assert!(!pred.value().has_non_finite());
    }

    #[test]
    fn uses_spatial_information() {
        // Perturbing one node's input changes its neighbours' predictions.
        let (model, data, mut rng) = setup();
        let mut batch = data.batch(Split::Train, &[0]);
        let base = model.forward(&batch, false, &mut rng).value();
        for t in 0..12 {
            let v = batch.x.at(&[0, t, 0, 0]);
            batch.x.set(&[0, t, 0, 0], v + 3.0);
        }
        let bumped = model.forward(&batch, false, &mut rng).value();
        let other_nodes_moved: f32 = (1..6)
            .map(|i| (base.at(&[0, 0, i, 0]) - bumped.at(&[0, 0, i, 0])).abs())
            .sum();
        assert!(other_nodes_moved > 1e-6, "no spatial coupling");
    }

    #[test]
    fn training_step_reduces_loss() {
        let (model, data, mut rng) = setup();
        let batch = data.batch(Split::Train, &[0, 1]);
        let target = Tensor::constant(data.scaler().transform(&batch.y));
        let loss_of = |m: &Dcrnn, rng: &mut StdRng| {
            d2stgnn_tensor::losses::mae_loss(&m.forward(&batch, true, rng), &target)
        };
        let l0 = loss_of(&model, &mut rng);
        l0.backward();
        use d2stgnn_tensor::optim::{Adam, Optimizer};
        let mut opt = Adam::new(model.parameters(), 0.01);
        opt.step();
        assert!(loss_of(&model, &mut rng).item() < l0.item());
    }
}
