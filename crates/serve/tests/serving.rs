//! End-to-end serving tests: micro-batch equivalence, hot-swap semantics,
//! deadline degradation, and overload shedding.

use d2stgnn_baselines::{ClassicalForecaster, HistoricalAverage};
use d2stgnn_core::{checkpoint, D2stgnn, D2stgnnConfig, TrafficModel};
use d2stgnn_data::{simulate, SimulatorConfig, Split, WindowedDataset};
use d2stgnn_serve::{InferRequest, ModelFactory, ModelRegistry, ServeConfig, ServeError, Server};
use d2stgnn_tensor::{no_grad, Array};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn dataset() -> WindowedDataset {
    let mut cfg = SimulatorConfig::tiny();
    cfg.num_nodes = 6;
    cfg.num_steps = 2 * 288;
    cfg.knn = 2;
    WindowedDataset::new(simulate(&cfg), 12, 12, (0.6, 0.2, 0.2))
}

fn model_config(n: usize) -> D2stgnnConfig {
    let mut cfg = D2stgnnConfig::small(n);
    cfg.layers = 1;
    cfg
}

fn factory_for(data: &WindowedDataset, seed: u64) -> ModelFactory {
    let cfg = model_config(data.num_nodes());
    let network = data.data().network.clone();
    Arc::new(move || {
        let mut rng = StdRng::seed_from_u64(seed);
        Box::new(D2stgnn::new(cfg.clone(), &network, &mut rng)) as Box<dyn TrafficModel>
    })
}

/// Build a raw-scale request from a dataset window.
fn request_for(data: &WindowedDataset, split: Split, widx: usize, model: &str) -> InferRequest {
    let start = data.window_starts(split)[widx];
    let (th, n) = (data.th(), data.num_nodes());
    let raw = data.data();
    let mut window = Array::zeros(&[th, n, 1]);
    let mut tod = Vec::with_capacity(th);
    let mut dow = Vec::with_capacity(th);
    for t in 0..th {
        tod.push(raw.time_of_day(start + t));
        dow.push(raw.day_of_week(start + t));
        for i in 0..n {
            window.set(&[t, i, 0], raw.values.at(&[start + t, i]));
        }
    }
    InferRequest {
        model: model.to_string(),
        window,
        tod,
        dow,
        deadline: None,
        trace: d2stgnn_serve::TraceHandle::inert(),
    }
}

/// Register a fresh seed-`seed` model under `name`; returns its generation.
fn register(registry: &ModelRegistry, data: &WindowedDataset, name: &str, seed: u64) -> u64 {
    let factory = factory_for(data, seed);
    let model = factory();
    let ckpt = checkpoint::snapshot(model.as_ref() as &dyn d2stgnn_tensor::nn::Module, name);
    registry
        .register(
            name,
            factory,
            ckpt,
            *data.scaler(),
            [data.th(), data.num_nodes()],
        )
        .expect("register")
}

#[test]
fn batched_forward_is_bit_identical_to_sequential() {
    let data = dataset();
    let registry = Arc::new(ModelRegistry::new());
    register(&registry, &data, "d2stgnn", 7);

    // Sequential reference: the same weights, one window at a time.
    let reference = factory_for(&data, 7)();
    let scaler = *data.scaler();
    let mut rng = StdRng::seed_from_u64(0);
    let expected: Vec<Array> = (0..8)
        .map(|w| {
            let batch = data.batch(Split::Test, &[w]);
            let out = no_grad(|| reference.forward(&batch, false, &mut rng)).value();
            let (tf, n) = (data.tf(), data.num_nodes());
            let mut vals = Array::zeros(&[tf, n]);
            for t in 0..tf {
                for i in 0..n {
                    vals.set(
                        &[t, i],
                        out.at(&[0, t, i, 0]) * scaler.std() + scaler.mean(),
                    );
                }
            }
            vals
        })
        .collect();

    // One worker, batch of 8, generous hold window: all eight requests fuse
    // into a single forward pass.
    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 1,
            max_batch: 8,
            max_wait: Duration::from_secs(5),
            queue_capacity: 64,
        },
    )
    .expect("start server");
    let handles: Vec<_> = (0..8)
        .map(|w| {
            server
                .submit(request_for(&data, Split::Test, w, "d2stgnn"))
                .unwrap()
        })
        .collect();
    for (w, handle) in handles.into_iter().enumerate() {
        let forecast = handle.wait().unwrap();
        assert!(!forecast.fallback);
        assert_eq!(forecast.model, "d2stgnn");
        assert_eq!(
            forecast.values.data(),
            expected[w].data(),
            "window {w} differs between batched and sequential serving"
        );
    }
    let stats = server.stats();
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.batches, 1, "expected one fused micro-batch");
    assert_eq!(stats.mean_batch_size, 8.0);
    assert!(stats.p95_latency >= stats.p50_latency);
    assert!(stats.p99_latency >= stats.p95_latency);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn latency_percentiles_populate_and_stay_ordered() {
    let data = dataset();
    let registry = Arc::new(ModelRegistry::new());
    register(&registry, &data, "d2stgnn", 7);

    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 1,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            queue_capacity: 64,
        },
    )
    .expect("start server");
    for w in 0..12 {
        server
            .infer(request_for(&data, Split::Test, w % 4, "d2stgnn"))
            .expect("infer");
    }
    let stats = server.stats();
    assert_eq!(stats.completed, 12);
    assert!(stats.p50_latency > Duration::ZERO);
    assert!(stats.p95_latency >= stats.p50_latency);
    assert!(stats.p99_latency >= stats.p95_latency);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn hot_swap_keeps_in_flight_requests_on_old_model() {
    let data = dataset();
    let registry = Arc::new(ModelRegistry::new());
    let gen1 = register(&registry, &data, "d2stgnn", 7);

    // One worker with room for a second request: it pops the first request,
    // resolves the model version, and holds the batch open.
    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 1,
            max_batch: 2,
            max_wait: Duration::from_secs(5),
            queue_capacity: 64,
        },
    )
    .expect("start server");
    let a = server
        .submit(request_for(&data, Split::Test, 0, "d2stgnn"))
        .unwrap();
    // Let the worker pick up the request and pin its version.
    std::thread::sleep(Duration::from_millis(150));

    // Reload with different weights mid-collection.
    let swapped = factory_for(&data, 1234)();
    let ckpt = checkpoint::snapshot(swapped.as_ref() as &dyn d2stgnn_tensor::nn::Module, "v2");
    let gen2 = registry.reload("d2stgnn", ckpt).unwrap();
    assert!(gen2 > gen1);

    // This request joins the already-open batch: both must be answered by
    // the generation that was live when the batch started.
    let b = server
        .submit(request_for(&data, Split::Test, 1, "d2stgnn"))
        .unwrap();
    let fa = a.wait().unwrap();
    let fb = b.wait().unwrap();
    assert_eq!(
        fa.generation, gen1,
        "in-flight request migrated off its model"
    );
    assert_eq!(
        fb.generation, gen1,
        "batched request migrated off its model"
    );

    // The next batch picks up the new generation, with different weights.
    let fc = server
        .infer(request_for(&data, Split::Test, 0, "d2stgnn"))
        .unwrap();
    assert_eq!(fc.generation, gen2);
    assert_ne!(
        fa.values.data(),
        fc.values.data(),
        "same window, swapped weights should forecast differently"
    );
    server.shutdown().expect("clean shutdown");
}

#[test]
fn deadline_exceeded_request_gets_fallback_answer() {
    let data = dataset();
    let registry = Arc::new(ModelRegistry::new());
    register(&registry, &data, "d2stgnn", 7);
    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_capacity: 64,
        },
    )
    .expect("start server");
    let mut ha = HistoricalAverage::new();
    ha.fit(&data);
    server.set_fallback(ha);

    let mut request = request_for(&data, Split::Test, 2, "d2stgnn");
    request.deadline = Some(Instant::now() - Duration::from_millis(5));
    let last = request.tod.len() - 1;
    let (start_dow, start_slot) = (request.dow[last], request.tod[last] + 1);
    let forecast = server.infer(request).unwrap();

    assert!(forecast.fallback);
    assert_eq!(forecast.model, "HA");
    assert_eq!(forecast.generation, 0);
    // Identical to querying the table directly (fit is deterministic).
    let mut reference = HistoricalAverage::new();
    reference.fit(&data);
    let expected = reference.predict_slots(start_dow, start_slot, data.tf());
    assert_eq!(forecast.values.data(), expected.data());

    let stats = server.stats();
    assert_eq!(stats.deadline_misses, 1);
    assert_eq!(stats.fallback_served, 1);
    assert_eq!(stats.completed, 0);
    server.shutdown().expect("clean shutdown");
}

/// Start a server whose single worker is pinned holding an open batch for
/// model `"a"`, then fill the queue with a model-`"b"` request. Returns the
/// server and a drained-later handle pair.
fn overloaded_server(data: &WindowedDataset, registry: &Arc<ModelRegistry>) -> Server {
    register(registry, data, "a", 7);
    register(registry, data, "b", 8);
    let server = Server::start(
        Arc::clone(registry),
        ServeConfig {
            workers: 1,
            max_batch: 2,
            max_wait: Duration::from_secs(5),
            queue_capacity: 1,
        },
    )
    .expect("start server");
    // Worker pops this and holds the batch open waiting for more "a" traffic.
    server
        .submit(request_for(data, Split::Test, 0, "a"))
        .unwrap();
    std::thread::sleep(Duration::from_millis(150));
    // Fills the queue (capacity 1) while the worker is busy.
    server
        .submit(request_for(data, Split::Test, 0, "b"))
        .unwrap();
    server
}

#[test]
fn full_queue_without_fallback_returns_overloaded() {
    let data = dataset();
    let registry = Arc::new(ModelRegistry::new());
    let server = overloaded_server(&data, &registry);
    let err = server
        .submit(request_for(&data, Split::Test, 1, "b"))
        .expect_err("queue is full");
    assert!(matches!(err, ServeError::Overloaded), "got {err}");
    assert_eq!(server.stats().sheds, 1);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn full_queue_with_fallback_serves_classical_answer() {
    let data = dataset();
    let registry = Arc::new(ModelRegistry::new());
    let server = overloaded_server(&data, &registry);
    let mut ha = HistoricalAverage::new();
    ha.fit(&data);
    server.set_fallback(ha);

    let shed = server
        .submit(request_for(&data, Split::Test, 1, "b"))
        .expect("fallback absorbs the overload");
    let forecast = shed.wait().unwrap();
    assert!(forecast.fallback);
    assert_eq!(forecast.model, "HA");
    assert_eq!(forecast.values.shape(), &[data.tf(), data.num_nodes()]);
    let stats = server.stats();
    assert_eq!(stats.sheds, 1);
    assert_eq!(stats.fallback_served, 1);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn unknown_model_and_bad_shapes_are_rejected() {
    let data = dataset();
    let registry = Arc::new(ModelRegistry::new());
    register(&registry, &data, "d2stgnn", 7);
    let server =
        Server::start(Arc::clone(&registry), ServeConfig::default()).expect("start server");

    let err = server
        .submit(request_for(&data, Split::Test, 0, "nope"))
        .expect_err("unregistered model");
    assert!(matches!(err, ServeError::UnknownModel(_)));

    let mut bad = request_for(&data, Split::Test, 0, "d2stgnn");
    bad.window = Array::zeros(&[3, 3, 1]);
    let err = server.submit(bad).expect_err("wrong window shape");
    assert!(matches!(err, ServeError::BadRequest(_)));

    let mut bad = request_for(&data, Split::Test, 0, "d2stgnn");
    bad.tod.pop();
    let err = server.submit(bad).expect_err("short tod");
    assert!(matches!(err, ServeError::BadRequest(_)));
    server.shutdown().expect("clean shutdown");
}

#[test]
fn registry_rejects_corrupt_checkpoints_and_unknown_reloads() {
    let data = dataset();
    let registry = ModelRegistry::new();
    let factory = factory_for(&data, 7);
    let model = factory();
    let mut ckpt =
        checkpoint::snapshot(model.as_ref() as &dyn d2stgnn_tensor::nn::Module, "d2stgnn");
    // Corrupt one weight after the checksum was computed.
    ckpt.parameters[0].data_mut()[0] += 1.0;
    let err = registry
        .register("d2stgnn", factory.clone(), ckpt, *data.scaler(), [12, 6])
        .expect_err("corrupt checkpoint");
    assert!(matches!(err, ServeError::Checkpoint(_)), "got {err}");

    let ckpt = checkpoint::snapshot(model.as_ref() as &dyn d2stgnn_tensor::nn::Module, "d2stgnn");
    let err = registry.reload("missing", ckpt).expect_err("unknown name");
    assert!(matches!(err, ServeError::UnknownModel(_)));
    assert!(registry.names().is_empty());
}

#[test]
fn v3_training_checkpoint_registers_reloads_and_serves() {
    // The trainer's full-state checkpoints (format v3, with optimizer
    // moments, RNG words, etc.) must be directly servable: the registry
    // restores the parameters and ignores the training payload.
    let data = dataset();
    let registry = Arc::new(ModelRegistry::new());
    let factory = factory_for(&data, 7);
    let model = factory();
    let dir = std::env::temp_dir().join("d2stgnn-serve-v3");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("train.json");
    let cfg = d2stgnn_core::TrainConfig {
        max_epochs: 1,
        checkpoint_path: Some(path.to_string_lossy().into_owned()),
        ..d2stgnn_core::TrainConfig::default()
    };
    d2stgnn_core::Trainer::new(cfg)
        .train(model.as_ref(), &data)
        .expect("training");

    let ckpt = checkpoint::read(&path).expect("v3 checkpoint reads back");
    assert!(ckpt.train.is_some(), "trainer must persist full state");
    registry
        .register(
            "d2stgnn",
            factory.clone(),
            ckpt,
            *data.scaler(),
            [data.th(), data.num_nodes()],
        )
        .expect("serving must accept a v3 full-state checkpoint");

    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::from_millis(1),
            queue_capacity: 8,
        },
    )
    .expect("start server");
    let forecast = server
        .submit(request_for(&data, Split::Test, 0, "d2stgnn"))
        .expect("submit")
        .wait()
        .expect("forecast");
    assert!(!forecast.fallback);
    assert!(forecast.values.data().iter().all(|v| v.is_finite()));
    server.shutdown().expect("clean shutdown");

    // Hot swap with another v3 checkpoint bumps the generation.
    let ckpt = checkpoint::read(&path).expect("v3 checkpoint reads back");
    let gen2 = registry.reload("d2stgnn", ckpt).expect("reload v3");
    assert!(gen2 > 0);
    std::fs::remove_file(&path).ok();
}
