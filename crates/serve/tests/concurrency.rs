//! Concurrency-hygiene tests: the lock-order checker must catch an inverted
//! acquisition, and shutdown must surface a hung worker instead of blocking
//! forever.

use d2stgnn_core::{checkpoint, D2stgnn, D2stgnnConfig, TrafficModel};
use d2stgnn_data::{simulate, Batch, SimulatorConfig, WindowedDataset};
use d2stgnn_serve::lockorder::OrderedMutex;
use d2stgnn_serve::{InferRequest, ModelFactory, ModelRegistry, ServeConfig, ServeError, Server};
use d2stgnn_tensor::nn::Module;
use d2stgnn_tensor::{Array, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn lock_order_inversion_is_caught() {
    let a = Arc::new(OrderedMutex::new("test.inversion.a", 0u32));
    let b = Arc::new(OrderedMutex::new("test.inversion.b", 0u32));

    // Establish the canonical order a -> b on this thread.
    {
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
    }

    // A thread taking b -> a closes the cycle; the checker must panic
    // instead of letting the program carry a latent deadlock.
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let result = std::thread::spawn(move || {
        let gb = b2.lock();
        let _ga = a2.lock();
        drop(gb);
    })
    .join();
    let payload = result.expect_err("inverted acquisition must panic");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("lock-order inversion"),
        "panic should name the inversion, got: {message}"
    );
    assert!(
        message.contains("test.inversion.a") && message.contains("test.inversion.b"),
        "panic should name both locks, got: {message}"
    );
}

/// A model whose forward pass stalls long enough to outlive any reasonable
/// shutdown grace, simulating a wedged replica.
struct SlowModel {
    inner: D2stgnn,
    delay: Duration,
}

impl Module for SlowModel {
    fn parameters(&self) -> Vec<Tensor> {
        self.inner.parameters()
    }
}

impl TrafficModel for SlowModel {
    fn forward(&self, batch: &Batch, training: bool, rng: &mut StdRng) -> Tensor {
        std::thread::sleep(self.delay);
        self.inner.forward(batch, training, rng)
    }

    fn name(&self) -> String {
        "slow".to_string()
    }

    fn horizon(&self) -> usize {
        self.inner.horizon()
    }
}

#[test]
fn hung_worker_surfaces_worker_hung_on_shutdown() {
    let mut sim = SimulatorConfig::tiny();
    sim.num_nodes = 4;
    sim.num_steps = 288;
    sim.knn = 2;
    let data = WindowedDataset::new(simulate(&sim), 12, 12, (0.6, 0.2, 0.2));

    let mut cfg = D2stgnnConfig::small(data.num_nodes());
    cfg.layers = 1;
    let network = data.data().network.clone();
    let factory: ModelFactory = Arc::new(move || {
        let mut rng = StdRng::seed_from_u64(0);
        Box::new(SlowModel {
            inner: D2stgnn::new(cfg.clone(), &network, &mut rng),
            delay: Duration::from_secs(20),
        }) as Box<dyn TrafficModel>
    });
    let probe = factory();
    let ckpt = checkpoint::snapshot(probe.as_ref() as &dyn Module, "slow");

    let registry = Arc::new(ModelRegistry::new());
    registry
        .register(
            "slow",
            factory,
            ckpt,
            *data.scaler(),
            [data.th(), data.num_nodes()],
        )
        .expect("register slow model");

    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::from_millis(1),
            queue_capacity: 4,
        },
    )
    .expect("start server");

    let request = InferRequest {
        model: "slow".to_string(),
        window: Array::zeros(&[data.th(), data.num_nodes(), 1]),
        tod: vec![0; data.th()],
        dow: vec![0; data.th()],
        deadline: None,
        trace: d2stgnn_serve::TraceHandle::inert(),
    };
    let _handle = server.submit(request).expect("submit");

    // Give the worker time to pop the request and enter the stalled forward.
    std::thread::sleep(Duration::from_millis(300));

    let err = server
        .shutdown_timeout(Duration::from_millis(200))
        .expect_err("a worker stuck in forward must not shut down cleanly");
    assert!(
        matches!(err, ServeError::WorkerHung),
        "expected WorkerHung, got: {err}"
    );
}
