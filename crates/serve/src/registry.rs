//! Model registry: named, versioned checkpoints plus the recipe to rebuild a
//! live model from each.
//!
//! Tensors in this codebase are `Rc`-based and not `Send`, so a registry
//! cannot hand live models across threads. Instead it stores each version as
//! a `Send + Sync` bundle — checkpoint, scaler, and a factory closure — and
//! every worker thread instantiates its own replica on demand. A reload
//! simply publishes a new generation; workers notice the generation change
//! the next time they start a micro-batch, which gives hot-swap semantics
//! where in-flight batches finish on the version they started with.

use crate::error::ServeError;
use crate::lockorder::OrderedMutex;
use d2stgnn_core::checkpoint::{self, Checkpoint};
use d2stgnn_core::TrafficModel;
use d2stgnn_data::StandardScaler;
use d2stgnn_tensor::nn::Module;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Builds a fresh, un-restored model instance. Must be deterministic in
/// architecture (the checkpoint supplies the weights).
pub type ModelFactory = Arc<dyn Fn() -> Box<dyn TrafficModel> + Send + Sync>;

/// One immutable registered version of a model.
pub struct ModelVersion {
    name: String,
    generation: u64,
    checkpoint: Arc<Checkpoint>,
    scaler: StandardScaler,
    factory: ModelFactory,
    /// Expected input window shape `[T_h, N]` (channel dim fixed at 1).
    input_shape: [usize; 2],
    /// Forecast horizon `T_f` produced by this model.
    horizon: usize,
}

impl ModelVersion {
    /// Registered model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Monotone generation stamp; bumped by every register/reload.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Train-split scaler applied to inputs and inverted on outputs.
    pub fn scaler(&self) -> StandardScaler {
        self.scaler
    }

    /// Expected input window shape `[T_h, N]`.
    pub fn input_shape(&self) -> [usize; 2] {
        self.input_shape
    }

    /// Forecast horizon `T_f`.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Build a live replica of this version (factory + checkpoint restore).
    pub fn instantiate(&self) -> Result<Box<dyn TrafficModel>, ServeError> {
        let model = (self.factory)();
        let module: &dyn Module = model.as_ref();
        checkpoint::restore(module, &self.checkpoint)?;
        Ok(model)
    }
}

/// Thread-safe map of named model versions with hot-swap reload.
pub struct ModelRegistry {
    entries: OrderedMutex<HashMap<String, Arc<ModelVersion>>>,
    generation: AtomicU64,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self {
            entries: OrderedMutex::new("serve.registry.entries", HashMap::new()),
            generation: AtomicU64::new(0),
        }
    }
}

impl ModelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn next_generation(&self) -> u64 {
        // relaxed: generation stamps only need uniqueness; publication happens under the registry mutex
        self.generation.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Register (or replace) a model under `name`. The checkpoint's
    /// integrity metadata is verified and one replica is instantiated to
    /// prove the factory and checkpoint agree on shapes. Returns the new
    /// generation stamp.
    pub fn register(
        &self,
        name: &str,
        factory: ModelFactory,
        checkpoint: Checkpoint,
        scaler: StandardScaler,
        input_shape: [usize; 2],
    ) -> Result<u64, ServeError> {
        checkpoint.verify_integrity()?;
        let generation = self.next_generation();
        let version = ModelVersion {
            name: name.to_string(),
            generation,
            checkpoint: Arc::new(checkpoint),
            scaler,
            factory,
            input_shape,
            horizon: 0,
        };
        let probe = version.instantiate()?;
        let version = ModelVersion {
            horizon: probe.horizon(),
            ..version
        };
        self.entries
            .lock()
            .insert(name.to_string(), Arc::new(version));
        Ok(generation)
    }

    /// Swap in a new checkpoint for an existing model, keeping its factory,
    /// scaler, and shapes. Returns the new generation stamp. Requests
    /// already being processed finish on the previous version; new
    /// micro-batches pick up this one.
    pub fn reload(&self, name: &str, checkpoint: Checkpoint) -> Result<u64, ServeError> {
        checkpoint.verify_integrity()?;
        let current = self
            .get(name)
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
        let generation = self.next_generation();
        let version = ModelVersion {
            name: current.name.clone(),
            generation,
            checkpoint: Arc::new(checkpoint),
            scaler: current.scaler,
            factory: current.factory.clone(),
            input_shape: current.input_shape,
            horizon: current.horizon,
        };
        version.instantiate()?;
        self.entries
            .lock()
            .insert(name.to_string(), Arc::new(version));
        Ok(generation)
    }

    /// Current version of a model, if registered.
    pub fn get(&self, name: &str) -> Option<Arc<ModelVersion>> {
        self.entries.lock().get(name).cloned()
    }

    /// Names of all registered models, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.lock().keys().cloned().collect();
        names.sort();
        names
    }
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("models", &self.names())
            .finish()
    }
}
