//! The inference server: a bounded request queue drained by a pool of
//! micro-batching workers.
//!
//! Each worker pops a request, waits up to [`ServeConfig::max_wait`] for more
//! requests to the same model (up to [`ServeConfig::max_batch`]), runs one
//! `no_grad` forward over the stacked batch, and fans results back over
//! per-request channels. Because evaluation-mode forwards are deterministic
//! and every operator treats batch rows independently, a request's forecast
//! is bit-identical whether it was served alone or inside a micro-batch.
//!
//! Overload behavior: when the queue is full, a request is shed — answered
//! immediately by the registered [`HistoricalAverage`] fallback if present,
//! or rejected with [`ServeError::Overloaded`]. Requests whose deadline
//! passes while queued degrade to the fallback the same way.
//!
//! Concurrency hygiene: every mutex in the serving path is an
//! [`crate::lockorder::OrderedMutex`], so debug and `sanitize` builds verify
//! the global lock-acquisition order on every `lock()`. Response channels are
//! rendezvous-bounded (`sync_channel(1)`; exactly one message ever crosses),
//! and shutdown joins workers under a grace period instead of blocking
//! forever on a wedged replica.

use crate::error::ServeError;
use crate::lockorder::{self, OrderedMutex};
use crate::registry::{ModelRegistry, ModelVersion};
use crate::stats::{ServerStats, StatsRecorder};
use d2stgnn_baselines::HistoricalAverage;
use d2stgnn_core::TrafficModel;
use d2stgnn_data::Batch;
use d2stgnn_tensor::{no_grad, Array};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Grace period [`Server::shutdown`] (and `Drop`) gives workers to exit
/// before declaring them hung and detaching.
pub const DEFAULT_SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// Worker-pool and batching knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads (each holds its own model replicas).
    pub workers: usize,
    /// Maximum requests fused into one forward pass.
    pub max_batch: usize,
    /// How long a worker holds an open batch waiting for more requests.
    pub max_wait: Duration,
    /// Bounded queue capacity; beyond this, requests are shed.
    pub queue_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 64,
        }
    }
}

/// One inference request: a raw-scale input window plus its clock features.
#[derive(Clone, Debug)]
pub struct InferRequest {
    /// Registered model name to serve with.
    pub model: String,
    /// Raw-scale input window `[T_h, N, 1]` (the server normalizes).
    pub window: Array,
    /// Time-of-day slot per input step (`T_h` entries).
    pub tod: Vec<usize>,
    /// Day-of-week per input step (`T_h` entries).
    pub dow: Vec<usize>,
    /// Absolute deadline; once passed the request degrades to the fallback.
    pub deadline: Option<Instant>,
    /// Request-scoped trace context, carried *explicitly* through the queue
    /// (a request changes threads between enqueue and the batch worker, so
    /// thread-local propagation cannot work). Embedded callers without a
    /// front door pass [`d2stgnn_obsv::TraceHandle::inert`].
    pub trace: d2stgnn_obsv::TraceHandle,
}

/// A served forecast.
#[derive(Clone, Debug)]
pub struct Forecast {
    /// Name of the model that actually answered (`"HA"` for the fallback).
    pub model: String,
    /// Registry generation that served the request (0 for the fallback).
    pub generation: u64,
    /// Raw-scale forecast `[T_f, N]`.
    pub values: Array,
    /// Whether the fallback answered instead of the requested model.
    pub fallback: bool,
}

/// Handle to an in-flight request.
#[derive(Debug)]
pub struct ForecastHandle {
    rx: Receiver<Result<Forecast, ServeError>>,
}

impl ForecastHandle {
    /// Block until the forecast (or error) arrives.
    pub fn wait(self) -> Result<Forecast, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerLost))
    }

    /// Block up to `timeout`; `None` if nothing arrived in time.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Forecast, ServeError>> {
        self.rx.recv_timeout(timeout).ok()
    }
}

struct Pending {
    request: InferRequest,
    enqueued: Instant,
    /// Bounded one-shot response slot: exactly one message is ever sent, so
    /// the capacity-1 buffer means `send` never blocks a worker.
    tx: SyncSender<Result<Forecast, ServeError>>,
}

struct Shared {
    config: ServeConfig,
    registry: Arc<ModelRegistry>,
    queue: OrderedMutex<VecDeque<Pending>>,
    /// Mirror of `queue.len()`, updated at every push/pop under the queue
    /// lock, so admission control can read the depth without contending on
    /// the queue mutex (or scraping the obsv gauge).
    depth: AtomicUsize,
    notify: Condvar,
    shutdown: AtomicBool,
    /// Number of worker threads that have left `worker_loop` (normally or by
    /// panic); shutdown waits on this instead of an unbounded `join`.
    exited: AtomicUsize,
    fallback: OrderedMutex<Option<Arc<HistoricalAverage>>>,
    stats: StatsRecorder,
}

/// The serving engine. Dropping it (or calling [`Server::shutdown`]) drains
/// the queue and joins the workers, up to a grace period.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start the worker pool against a registry. Fails (cleaning up any
    /// already-spawned workers) if the OS refuses a thread.
    pub fn start(registry: Arc<ModelRegistry>, config: ServeConfig) -> Result<Self, ServeError> {
        assert!(config.workers >= 1, "need at least one worker");
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(
            config.queue_capacity >= 1,
            "queue_capacity must be at least 1"
        );
        let shared = Arc::new(Shared {
            config: config.clone(),
            registry,
            queue: OrderedMutex::new("serve.queue", VecDeque::new()),
            depth: AtomicUsize::new(0),
            notify: Condvar::new(),
            shutdown: AtomicBool::new(false),
            exited: AtomicUsize::new(0),
            fallback: OrderedMutex::new("serve.fallback", None),
            stats: StatsRecorder::default(),
        });
        let mut server = Self {
            shared: Arc::clone(&shared),
            workers: Vec::with_capacity(config.workers),
        };
        for i in 0..config.workers {
            let shared = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("d2stgnn-serve-{i}"))
                .spawn(move || worker_loop(&shared))
            {
                Ok(handle) => server.workers.push(handle),
                Err(e) => {
                    // Tear down the partial pool before reporting; the
                    // already-running workers exit promptly on the flag.
                    let _ = server.stop_workers(DEFAULT_SHUTDOWN_GRACE);
                    return Err(ServeError::Internal(format!("spawn worker {i}: {e}")));
                }
            }
        }
        Ok(server)
    }

    /// Register the cheap classical fallback used for shed and late
    /// requests.
    ///
    /// # Panics
    /// If the model is unfitted.
    pub fn set_fallback(&self, fallback: HistoricalAverage) {
        assert!(
            fallback.is_fitted(),
            "fallback must be fitted before registration"
        );
        *self.shared.fallback.lock() = Some(Arc::new(fallback));
    }

    /// Validate and enqueue a request. Returns immediately with a handle;
    /// on a full queue the request is shed (fallback answer if registered,
    /// [`ServeError::Overloaded`] otherwise).
    pub fn submit(&self, request: InferRequest) -> Result<ForecastHandle, ServeError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let version = self
            .shared
            .registry
            .get(&request.model)
            .ok_or_else(|| ServeError::UnknownModel(request.model.clone()))?;
        validate(&request, &version)?;

        let (tx, rx) = sync_channel(1);
        {
            let mut queue = self.shared.queue.lock();
            if queue.len() >= self.shared.config.queue_capacity {
                drop(queue);
                request.trace.mark_shed();
                self.shared.stats.shed();
                let fallback = self.shared.fallback.lock().clone();
                return match fallback {
                    Some(ha) => {
                        self.shared.stats.fallback();
                        let forecast = fallback_forecast(&ha, &version, &request);
                        tx.send(Ok(forecast)).ok();
                        Ok(ForecastHandle { rx })
                    }
                    None => Err(ServeError::Overloaded),
                };
            }
            queue.push_back(Pending {
                request,
                enqueued: Instant::now(),
                tx,
            });
            self.shared.stats.accepted();
            self.shared.depth.store(queue.len(), Ordering::Release);
            d2stgnn_obsv::gauge_set!("d2stgnn_serve_queue_depth", queue.len() as f64);
        }
        self.shared.notify.notify_all();
        Ok(ForecastHandle { rx })
    }

    /// Convenience: submit and block for the answer.
    pub fn infer(&self, request: InferRequest) -> Result<Forecast, ServeError> {
        self.submit(request)?.wait()
    }

    /// Snapshot the server counters.
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.shared.stats.snapshot();
        stats.queue_depth = self.queue_depth() as u64;
        stats
    }

    /// Number of requests currently waiting in the bounded queue. Lock-free:
    /// reads a mirror that push/pop sites maintain under the queue lock, so
    /// front-end admission control can poll it per request without touching
    /// the queue mutex (or scraping the `d2stgnn_serve_queue_depth` gauge).
    pub fn queue_depth(&self) -> usize {
        self.shared.depth.load(Ordering::Acquire)
    }

    /// True when the queue is at capacity: a request submitted now would be
    /// shed (fallback answer or [`ServeError::Overloaded`]). Front ends use
    /// this to reject early with a retryable status instead of submitting.
    pub fn is_overloaded(&self) -> bool {
        self.queue_depth() >= self.shared.config.queue_capacity
    }

    /// The configured bounded-queue capacity, for watermark-based admission.
    pub fn queue_capacity(&self) -> usize {
        self.shared.config.queue_capacity
    }

    /// The registry this server reads from.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Stop accepting requests, drain the queue, and join the workers with
    /// the [`DEFAULT_SHUTDOWN_GRACE`] grace period.
    pub fn shutdown(self) -> Result<(), ServeError> {
        self.shutdown_timeout(DEFAULT_SHUTDOWN_GRACE)
    }

    /// Stop accepting requests, drain the queue, and join the workers.
    ///
    /// If any worker fails to exit within `grace` (for example a replica
    /// wedged inside a forward pass), its thread is detached and
    /// [`ServeError::WorkerHung`] is returned — the caller regains control
    /// instead of blocking forever.
    pub fn shutdown_timeout(mut self, grace: Duration) -> Result<(), ServeError> {
        self.stop_workers(grace)
    }

    fn stop_workers(&mut self, grace: Duration) -> Result<(), ServeError> {
        if self.workers.is_empty() {
            return Ok(());
        }
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify.notify_all();
        let total = self.workers.len();
        let deadline = Instant::now() + grace;
        {
            let mut queue = self.shared.queue.lock();
            while self.shared.exited.load(Ordering::Acquire) < total {
                let now = Instant::now();
                if now >= deadline {
                    drop(queue);
                    // Detach the hung threads; their Shared Arc keeps the
                    // state they touch alive, so this leaks a thread, not
                    // memory safety.
                    self.workers.clear();
                    return Err(ServeError::WorkerHung);
                }
                let (guard, _timed_out) =
                    lockorder::wait_timeout(&self.shared.notify, queue, deadline - now);
                queue = guard;
            }
        }
        // Every worker has left its loop; these joins only await thread
        // teardown and cannot block meaningfully.
        for handle in self.workers.drain(..) {
            handle.join().ok();
        }
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.stop_workers(DEFAULT_SHUTDOWN_GRACE);
    }
}

fn validate(request: &InferRequest, version: &ModelVersion) -> Result<(), ServeError> {
    let [th, n] = version.input_shape();
    if request.window.shape() != [th, n, 1] {
        return Err(ServeError::BadRequest(format!(
            "window shape {:?}, model {} expects [{th}, {n}, 1]",
            request.window.shape(),
            version.name()
        )));
    }
    if request.tod.len() != th || request.dow.len() != th {
        return Err(ServeError::BadRequest(format!(
            "tod/dow have {}/{} entries, expected {th}",
            request.tod.len(),
            request.dow.len()
        )));
    }
    if request.dow.iter().any(|d| *d >= 7) {
        return Err(ServeError::BadRequest(
            "day-of-week out of range".to_string(),
        ));
    }
    Ok(())
}

/// Answer a request from the historical-average table, keyed by the clock
/// position of the first forecast step (the step after the window's last
/// input step; `predict_slots` wraps midnight and the weekday).
fn fallback_forecast(
    fallback: &HistoricalAverage,
    version: &ModelVersion,
    request: &InferRequest,
) -> Forecast {
    let last = request.tod.len() - 1;
    let values =
        fallback.predict_slots(request.dow[last], request.tod[last] + 1, version.horizon());
    Forecast {
        model: "HA".to_string(),
        generation: 0,
        values,
        fallback: true,
    }
}

/// Per-worker replica cache: model name -> (generation it was built from,
/// live instance).
type ReplicaCache = HashMap<String, (u64, Box<dyn TrafficModel>)>;

/// Signals worker exit (normal return or panic) so shutdown can bound its
/// wait: bump the exit counter, then nudge the condvar. Briefly taking the
/// queue lock between the two serializes against the shutdown thread's
/// check-then-wait, closing the lost-wakeup window.
struct ExitSignal<'a> {
    shared: &'a Shared,
}

impl Drop for ExitSignal<'_> {
    fn drop(&mut self) {
        self.shared.exited.fetch_add(1, Ordering::Release);
        drop(self.shared.queue.lock());
        self.shared.notify.notify_all();
    }
}

fn worker_loop(shared: &Shared) {
    let _exit_signal = ExitSignal { shared };
    let mut cache: ReplicaCache = HashMap::new();
    // Evaluation-mode forwards never draw from the rng (dropout is identity),
    // so a fixed-seed per-worker rng keeps `forward`'s signature satisfied
    // without threading state anywhere.
    let mut rng = StdRng::seed_from_u64(0);
    loop {
        let mut queue = shared.queue.lock();
        loop {
            if !queue.is_empty() {
                break;
            }
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            queue = lockorder::wait(&shared.notify, queue);
        }
        let Some(first) = queue.pop_front() else {
            continue;
        };
        // Batch-fuse clock: from popping the batch's first request until the
        // fuse loop gives up; attributed to every fused request's trace.
        let fuse_start = Instant::now();
        shared.depth.store(queue.len(), Ordering::Release);
        let model_name = first.request.model.clone();
        // Resolve the version once per micro-batch: every request fused into
        // this batch is served by it, even if a reload lands mid-collection.
        // (Lock order: serve.queue is held while the registry lock is taken,
        // never the reverse.)
        let version = shared.registry.get(&model_name);
        let mut batch = vec![first];
        let hold_until = Instant::now() + shared.config.max_wait;
        while batch.len() < shared.config.max_batch {
            if let Some(pos) = queue.iter().position(|p| p.request.model == model_name) {
                if let Some(p) = queue.remove(pos) {
                    batch.push(p);
                }
                shared.depth.store(queue.len(), Ordering::Release);
                continue;
            }
            let now = Instant::now();
            if now >= hold_until || shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let (guard, _timed_out) =
                lockorder::wait_timeout(&shared.notify, queue, hold_until - now);
            queue = guard;
        }
        shared.depth.store(queue.len(), Ordering::Release);
        d2stgnn_obsv::gauge_set!("d2stgnn_serve_queue_depth", queue.len() as f64);
        drop(queue);
        let fuse_wait = fuse_start.elapsed();
        process_batch(shared, &mut cache, version, batch, &mut rng, fuse_wait);
        shared.notify.notify_all();
    }
}

fn process_batch(
    shared: &Shared,
    cache: &mut ReplicaCache,
    version: Option<Arc<ModelVersion>>,
    pending: Vec<Pending>,
    rng: &mut StdRng,
    fuse_wait: Duration,
) {
    let Some(version) = version else {
        let name = pending
            .first()
            .map(|p| p.request.model.clone())
            .unwrap_or_default();
        for p in pending {
            p.tx.send(Err(ServeError::UnknownModel(name.clone()))).ok();
        }
        return;
    };

    let mut batch_span = d2stgnn_obsv::span!("d2stgnn_serve_batch");
    d2stgnn_obsv::record!(batch_span, model = version.name());

    // Degrade requests whose deadline already passed.
    let now = Instant::now();
    let fallback = shared.fallback.lock().clone();
    let mut live = Vec::with_capacity(pending.len());
    for p in pending {
        let queue_wait = now.saturating_duration_since(p.enqueued);
        d2stgnn_obsv::observe!("d2stgnn_serve_queue_wait_seconds", queue_wait.as_secs_f64());
        // Queue-wait and fuse-hold attribution, plus a per-request event so
        // the JSONL stream ties the wait to the request's trace id.
        p.request.trace.stage("queue_wait", queue_wait);
        p.request.trace.stage("batch_fuse", fuse_wait);
        d2stgnn_obsv::event!(
            "d2stgnn_serve_queue_wait",
            trace_id = p.request.trace.id().unwrap_or_default(),
            wait_us = queue_wait.as_micros() as u64
        );
        let expired = p.request.deadline.is_some_and(|d| now > d);
        if !expired {
            live.push(p);
            continue;
        }
        shared.stats.deadline_miss();
        match &fallback {
            Some(ha) => {
                shared.stats.fallback();
                p.tx.send(Ok(fallback_forecast(ha, &version, &p.request)))
                    .ok();
            }
            None => {
                p.tx.send(Err(ServeError::DeadlineExceeded)).ok();
            }
        }
    }
    if live.is_empty() {
        return;
    }

    // Span links: every fused request's trace records the batch span id and
    // the ids of its co-batched peers, so one slow batch execution explains
    // every request it served (and vice versa from /debug/traces).
    let batch_id = batch_span.id();
    let member_ids: Vec<String> = live.iter().filter_map(|p| p.request.trace.id()).collect();
    for p in &live {
        p.request.trace.link_batch(batch_id, &member_ids);
    }
    if !member_ids.is_empty() {
        d2stgnn_obsv::record!(batch_span, trace_ids = member_ids.join(","));
    }

    // Rebuild this worker's replica if the registry generation moved.
    let cached_generation = cache.get(version.name()).map(|(g, _)| *g);
    if cached_generation != Some(version.generation()) {
        match version.instantiate() {
            Ok(model) => {
                cache.insert(version.name().to_string(), (version.generation(), model));
            }
            Err(e) => {
                let msg = e.to_string();
                for p in live {
                    p.tx.send(Err(ServeError::Internal(msg.clone()))).ok();
                }
                return;
            }
        }
    }
    let Some((_, model)) = cache.get(version.name()) else {
        // Unreachable after the insert above; answer rather than abort.
        for p in live {
            p.tx.send(Err(ServeError::Internal(
                "replica cache lost the model just built".to_string(),
            )))
            .ok();
        }
        return;
    };
    let model = model.as_ref();

    // Stack the windows into one normalized batch.
    let [th, n] = version.input_shape();
    let scaler = version.scaler();
    let b = live.len();
    let mut x = Array::zeros(&[b, th, n, 1]);
    let mut tod = Vec::with_capacity(b * th);
    let mut dow = Vec::with_capacity(b * th);
    for (bi, p) in live.iter().enumerate() {
        for t in 0..th {
            tod.push(p.request.tod[t]);
            dow.push(p.request.dow[t]);
            for i in 0..n {
                let raw = p.request.window.at(&[t, i, 0]);
                x.set(&[bi, t, i, 0], (raw - scaler.mean()) / scaler.std());
            }
        }
    }
    let tf = version.horizon();
    let batch = Batch {
        x,
        y: Array::zeros(&[b, tf, n, 1]),
        tod,
        dow,
    };

    d2stgnn_obsv::record!(batch_span, batch_size = b);
    let forward_start = Instant::now();
    let out = {
        let _forward_span = d2stgnn_obsv::span!("d2stgnn_serve_forward", batch_size = b);
        d2stgnn_obsv::gauge_add!("d2stgnn_serve_in_flight", b as f64);
        let out = no_grad(|| model.forward(&batch, false, rng)).value();
        d2stgnn_obsv::gauge_add!("d2stgnn_serve_in_flight", -(b as f64));
        out
    };
    let forward_wait = forward_start.elapsed();
    shared.stats.batch_done(b);

    // Fan the rows back out, de-normalized.
    let _post_span = d2stgnn_obsv::span!("d2stgnn_serve_postprocess", batch_size = b);
    for (bi, p) in live.into_iter().enumerate() {
        let row_start = Instant::now();
        let mut values = Array::zeros(&[tf, n]);
        for t in 0..tf {
            for i in 0..n {
                values.set(
                    &[t, i],
                    out.at(&[bi, t, i, 0]) * scaler.std() + scaler.mean(),
                );
            }
        }
        p.request.trace.stage("forward", forward_wait);
        p.request.trace.stage("postprocess", row_start.elapsed());
        shared
            .stats
            .request_done(p.enqueued.elapsed(), p.request.trace.id().as_deref());
        p.tx.send(Ok(Forecast {
            model: version.name().to_string(),
            generation: version.generation(),
            values,
            fallback: false,
        }))
        .ok();
    }
}
