//! Embeddable inference engine for trained D²STGNN models (and any other
//! [`d2stgnn_core::TrafficModel`]).
//!
//! The moving parts, mirroring the paper's deployment sketch (Fig. 8: one
//! trained estimator shared by many downstream consumers):
//!
//! - [`ModelRegistry`] — named, versioned checkpoints. [`ModelRegistry::reload`]
//!   hot-swaps a model: micro-batches already being processed finish on the
//!   old version, the next batch picks up the new one.
//! - [`Server`] — a bounded request queue drained by micro-batching workers.
//!   A worker fuses up to [`ServeConfig::max_batch`] same-model requests
//!   (waiting at most [`ServeConfig::max_wait`]) into one `no_grad` forward
//!   and fans the rows back to per-request channels. Batched results are
//!   bit-identical to serving each request alone.
//! - Degradation — a fitted [`d2stgnn_baselines::HistoricalAverage`] can be
//!   registered as fallback; shed requests (full queue) and requests whose
//!   deadline passed are answered from its lookup table instead of failing.
//! - [`ServerStats`] — request/batch/shed/fallback counters plus p50/p95/p99
//!   end-to-end latency.
//!
//! ```no_run
//! use d2stgnn_serve::{ModelRegistry, ServeConfig, Server};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), d2stgnn_serve::ServeError> {
//! let registry = Arc::new(ModelRegistry::new());
//! // registry.register("d2stgnn", factory, checkpoint, scaler, [12, 207])
//! let server = Server::start(Arc::clone(&registry), ServeConfig::default())?;
//! // let forecast = server.infer(request)?;
//! server.shutdown()?;
//! # Ok(())
//! # }
//! ```
//!
//! Concurrency hygiene: all internal locks are [`lockorder::OrderedMutex`]es,
//! which in debug and `sanitize` builds record the global lock-acquisition
//! graph and panic on an inversion (deadlock potential) instead of hanging.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod error;
pub mod lockorder;
mod registry;
mod server;
mod stats;

pub use error::ServeError;
pub use registry::{ModelFactory, ModelRegistry, ModelVersion};
pub use server::{
    Forecast, ForecastHandle, InferRequest, ServeConfig, Server, DEFAULT_SHUTDOWN_GRACE,
};
pub use stats::{ServerStats, StatsRecorder};

// Re-exported so front ends can fill `InferRequest::trace` without naming
// the telemetry crate directly. The handle is carried *in* the request
// envelope — never through thread-locals — because requests cross thread
// boundaries at the queue.
pub use d2stgnn_obsv::TraceHandle;
