//! Lock-order sanitizer: an instrumented mutex that records the global
//! acquisition-order graph and panics on a cycle (deadlock potential).
//!
//! Every [`OrderedMutex`] has a stable id and a human-readable name. When a
//! thread acquires lock `B` while holding lock `A`, the edge `A -> B` is
//! recorded in a process-wide graph. If the acquisition would close a cycle
//! (some other thread previously acquired `A` while holding `B`), the checker
//! panics immediately with both names — turning a once-in-a-blue-moon
//! deadlock hang into a deterministic test failure.
//!
//! The checker is active in debug builds and under `--features sanitize`; in
//! plain release builds [`OrderedMutex`] is a zero-bookkeeping wrapper that
//! only adds poison recovery (a panicking worker must not take the whole
//! server down with a poisoned lock).

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Whether acquisition-order tracking is compiled in and active.
pub const fn check_enabled() -> bool {
    cfg!(any(debug_assertions, feature = "sanitize"))
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

struct OrderGraph {
    /// `edges[a]` contains `b` when some thread acquired `b` while holding `a`.
    edges: HashMap<u64, HashSet<u64>>,
    names: HashMap<u64, &'static str>,
}

static GRAPH: OnceLock<Mutex<OrderGraph>> = OnceLock::new();

fn graph() -> &'static Mutex<OrderGraph> {
    GRAPH.get_or_init(|| {
        Mutex::new(OrderGraph {
            edges: HashMap::new(),
            names: HashMap::new(),
        })
    })
}

thread_local! {
    /// Ids of OrderedMutexes this thread currently holds, oldest first.
    static HELD: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Recover a guard from a poisoned lock: the protected state is plain data
/// (queues, maps, counters) that stays structurally valid even if the thread
/// that panicked left it mid-update, and the server must keep serving.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// True when `from` can reach `to` along recorded acquisition edges.
fn reaches(edges: &HashMap<u64, HashSet<u64>>, from: u64, to: u64) -> bool {
    let mut stack = vec![from];
    let mut seen = HashSet::new();
    while let Some(node) = stack.pop() {
        if node == to {
            return true;
        }
        if !seen.insert(node) {
            continue;
        }
        if let Some(next) = edges.get(&node) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// A mutex that participates in lock-order checking. Drop-in replacement for
/// `std::sync::Mutex` within this crate (poison-recovering `lock`).
pub struct OrderedMutex<T> {
    inner: Mutex<T>,
    id: u64,
    name: &'static str,
}

impl<T> OrderedMutex<T> {
    /// Wrap `value`; `name` appears in cycle panics and must be unique-ish.
    pub fn new(name: &'static str, value: T) -> Self {
        // relaxed: id allocation only needs fetch_add's atomicity, not ordering
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        if check_enabled() {
            lock_recover(graph()).names.insert(id, name);
        }
        Self {
            inner: Mutex::new(value),
            id,
            name,
        }
    }

    /// Name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquire the lock, recording (and checking) the acquisition order.
    ///
    /// # Panics
    /// In debug/sanitize builds: if this acquisition closes a cycle in the
    /// global acquisition-order graph, or if the thread already holds this
    /// very lock (guaranteed self-deadlock).
    pub fn lock(&self) -> OrderedGuard<'_, T> {
        if check_enabled() {
            self.before_acquire();
        }
        let guard = lock_recover(&self.inner);
        if check_enabled() {
            HELD.with(|held| held.borrow_mut().push(self.id));
        }
        OrderedGuard {
            guard: Some(guard),
            id: self.id,
        }
    }

    fn before_acquire(&self) {
        let held: Vec<u64> = HELD.with(|held| held.borrow().clone());
        if held.is_empty() {
            return;
        }
        let mut g = lock_recover(graph());
        if held.contains(&self.id) {
            // The panic funnel for the sanitizer: deliberate, loud, and only
            // reachable when the lock discipline is already broken.
            panic!(
                "lock-order violation: thread re-acquiring '{}' it already holds",
                self.name
            );
        }
        // Would an edge held -> self close a cycle? That happens exactly when
        // self already reaches one of the held locks.
        for &h in &held {
            if reaches(&g.edges, self.id, h) {
                let other = g.names.get(&h).copied().unwrap_or("<unnamed>");
                panic!(
                    "lock-order inversion (deadlock potential): acquiring '{}' while \
                     holding '{}', but '{}' has previously been acquired while '{}' was held",
                    self.name, other, other, self.name
                );
            }
        }
        for &h in &held {
            g.edges.entry(h).or_default().insert(self.id);
        }
    }
}

impl<T> std::fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("name", &self.name)
            .finish()
    }
}

/// RAII guard for [`OrderedMutex`]; releases the lock (and pops the held
/// stack) on drop.
pub struct OrderedGuard<'a, T> {
    /// Always `Some` while the guard is alive; taken transiently by the
    /// condvar helpers.
    guard: Option<MutexGuard<'a, T>>,
    id: u64,
}

impl<T> Drop for OrderedGuard<'_, T> {
    fn drop(&mut self) {
        if check_enabled() {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|&h| h == self.id) {
                    held.remove(pos);
                }
            });
        }
    }
}

impl<T> std::ops::Deref for OrderedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.guard {
            Some(g) => g,
            None => unreachable!("guard is only vacated inside the condvar helpers"),
        }
    }
}

impl<T> std::ops::DerefMut for OrderedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.guard {
            Some(g) => g,
            None => unreachable!("guard is only vacated inside the condvar helpers"),
        }
    }
}

/// `Condvar::wait` for [`OrderedGuard`]s. The lock identity stays on the
/// thread's held stack across the wait, which is sound: a thread blocked in
/// `wait` acquires nothing else, and it reclaims the same lock on wakeup.
pub fn wait<'a, T>(cvar: &Condvar, mut guard: OrderedGuard<'a, T>) -> OrderedGuard<'a, T> {
    let Some(inner) = guard.guard.take() else {
        unreachable!("guard is always occupied on entry")
    };
    let inner = match cvar.wait(inner) {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    guard.guard = Some(inner);
    guard
}

/// `Condvar::wait_timeout` for [`OrderedGuard`]s; the bool is "timed out".
pub fn wait_timeout<'a, T>(
    cvar: &Condvar,
    mut guard: OrderedGuard<'a, T>,
    timeout: Duration,
) -> (OrderedGuard<'a, T>, bool) {
    let Some(inner) = guard.guard.take() else {
        unreachable!("guard is always occupied on entry")
    };
    let (inner, result) = match cvar.wait_timeout(inner, timeout) {
        Ok((g, r)) => (g, r),
        Err(poisoned) => {
            let (g, r) = poisoned.into_inner();
            (g, r)
        }
    };
    guard.guard = Some(inner);
    (guard, result.timed_out())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn consistent_order_is_fine() {
        let a = Arc::new(OrderedMutex::new("unit.consistent.a", 0u32));
        let b = Arc::new(OrderedMutex::new("unit.consistent.b", 0u32));
        for _ in 0..3 {
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
        }
        // Same order from another thread: still fine.
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let ga = a2.lock();
            let _gb = b2.lock();
            drop(ga);
        })
        .join()
        .expect("consistent order must not panic");
    }

    #[test]
    fn relocking_panics() {
        let m = Arc::new(OrderedMutex::new("unit.relock", 0u32));
        let m2 = Arc::clone(&m);
        let result = std::thread::spawn(move || {
            let g1 = m2.lock();
            let _g2 = m2.lock(); // self-deadlock without the checker
            drop(g1);
        })
        .join();
        assert!(result.is_err(), "re-acquiring a held lock must panic");
    }

    #[test]
    fn guard_pops_held_stack() {
        let a = OrderedMutex::new("unit.pop.a", 1u32);
        {
            let g = a.lock();
            assert_eq!(*g, 1);
        }
        // After release, acquiring in any order relative to a fresh lock is
        // not an inversion.
        let b = OrderedMutex::new("unit.pop.b", 2u32);
        let gb = b.lock();
        let ga = a.lock();
        assert_eq!(*ga + *gb, 3);
    }
}
