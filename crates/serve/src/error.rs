//! Typed serving errors.

use d2stgnn_core::checkpoint::CheckpointError;

/// Errors surfaced by the serving engine.
#[derive(Debug)]
pub enum ServeError {
    /// The bounded request queue is full and no fallback is registered.
    Overloaded,
    /// The request's deadline passed before a worker reached it and no
    /// fallback is registered.
    DeadlineExceeded,
    /// No model with the requested name is registered.
    UnknownModel(String),
    /// The request payload disagrees with the registered model's shape.
    BadRequest(String),
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown,
    /// A checkpoint failed to validate or restore.
    Checkpoint(CheckpointError),
    /// The worker serving this request disappeared (poisoned or panicked).
    WorkerLost,
    /// A worker failed to exit within the shutdown grace period; its thread
    /// was detached so the caller regains control.
    WorkerHung,
    /// A worker failed to rebuild its model replica.
    Internal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "request queue full, request shed"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded before processing"),
            ServeError::UnknownModel(name) => write!(f, "no registered model named {name:?}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            ServeError::WorkerLost => write!(f, "worker dropped the request"),
            ServeError::WorkerHung => {
                write!(f, "worker did not exit within the shutdown grace period")
            }
            ServeError::Internal(msg) => write!(f, "internal serving failure: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}
