//! Server-side counters and latency percentiles.
//!
//! Every counter bump and latency observation is mirrored into the
//! `d2stgnn_serve_*` metrics of [`d2stgnn_obsv`] (a no-op unless the `obsv`
//! feature is on), so the Prometheus dump and the [`ServerStats`] snapshot
//! tell the same story. The exact-window percentiles here stay authoritative
//! for `ServerStats`; the obsv histogram trades a bounded (~12%) quantile
//! error for a full-lifetime view and text exposition.

use crate::lockorder::OrderedMutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How many recent request latencies the percentile window keeps.
const LATENCY_WINDOW: usize = 4096;

/// Point-in-time snapshot of server counters.
#[derive(Clone, Debug, PartialEq)]
pub struct ServerStats {
    /// Requests accepted into the queue.
    pub requests: u64,
    /// Requests answered by a model forward pass.
    pub completed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests shed because the queue was full.
    pub sheds: u64,
    /// Requests answered by the registered fallback.
    pub fallback_served: u64,
    /// Requests whose deadline passed before a worker reached them.
    pub deadline_misses: u64,
    /// Requests waiting in the bounded queue at snapshot time. Filled by
    /// [`crate::Server::stats`] from the live queue-depth mirror; zero when a
    /// [`StatsRecorder`] is snapshotted without a server attached.
    pub queue_depth: u64,
    /// Median end-to-end latency over the recent window (zero when empty).
    pub p50_latency: Duration,
    /// 95th-percentile end-to-end latency over the recent window.
    pub p95_latency: Duration,
    /// 99th-percentile end-to-end latency over the recent window.
    pub p99_latency: Duration,
    /// Mean requests per executed micro-batch (zero before the first batch).
    pub mean_batch_size: f64,
}

/// Lock-light recorder the server and its workers write into.
pub struct StatsRecorder {
    requests: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    sheds: AtomicU64,
    fallback_served: AtomicU64,
    deadline_misses: AtomicU64,
    /// Ring buffer of recent latencies in nanoseconds.
    latencies: OrderedMutex<Vec<u64>>,
    cursor: AtomicU64,
}

impl Default for StatsRecorder {
    fn default() -> Self {
        Self {
            requests: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            fallback_served: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            latencies: OrderedMutex::new("serve.stats.latencies", Vec::new()),
            cursor: AtomicU64::new(0),
        }
    }
}

impl StatsRecorder {
    pub(crate) fn accepted(&self) {
        // relaxed: monotonic stats counter; no other memory is published through it
        self.requests.fetch_add(1, Ordering::Relaxed);
        d2stgnn_obsv::counter_add!("d2stgnn_serve_requests_total", 1);
    }

    pub(crate) fn shed(&self) {
        // relaxed: monotonic stats counter; no other memory is published through it
        self.sheds.fetch_add(1, Ordering::Relaxed);
        d2stgnn_obsv::counter_add!("d2stgnn_serve_sheds_total", 1);
    }

    pub(crate) fn fallback(&self) {
        // relaxed: monotonic stats counter; no other memory is published through it
        self.fallback_served.fetch_add(1, Ordering::Relaxed);
        d2stgnn_obsv::counter_add!("d2stgnn_serve_fallback_total", 1);
    }

    pub(crate) fn deadline_miss(&self) {
        // relaxed: monotonic stats counter; no other memory is published through it
        self.deadline_misses.fetch_add(1, Ordering::Relaxed);
        d2stgnn_obsv::counter_add!("d2stgnn_serve_deadline_misses_total", 1);
    }

    pub(crate) fn batch_done(&self, size: usize) {
        // relaxed: monotonic stats counter; no other memory is published through it
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        d2stgnn_obsv::counter_add!("d2stgnn_serve_batches_total", 1);
        d2stgnn_obsv::observe!("d2stgnn_serve_batch_size", size as f64);
    }

    pub(crate) fn request_done(&self, latency: Duration, trace_id: Option<&str>) {
        // relaxed: monotonic stats counter; no other memory is published through it
        self.completed.fetch_add(1, Ordering::Relaxed);
        // Exemplar: the slowest traced request stays attached to the latency
        // histogram (an absent/empty id degrades to a plain observation).
        d2stgnn_obsv::observe_exemplar!(
            "d2stgnn_serve_request_seconds",
            latency.as_secs_f64(),
            trace_id.unwrap_or("")
        );
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        // relaxed: the cursor only picks a slot; the window itself is mutex-guarded
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed) as usize % LATENCY_WINDOW;
        let mut window = self.latencies.lock();
        if slot < window.len() {
            window[slot] = nanos;
        } else {
            window.push(nanos);
        }
    }

    /// Snapshot the counters and recompute percentiles.
    pub fn snapshot(&self) -> ServerStats {
        let (p50, p95, p99) = {
            let window = self.latencies.lock();
            percentiles(&window)
        };
        // relaxed: point-in-time snapshot; counters are independent and tearing across them only blurs one report
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        ServerStats {
            requests: self.requests.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            batches,
            sheds: self.sheds.load(Ordering::Relaxed),
            fallback_served: self.fallback_served.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            queue_depth: 0,
            p50_latency: p50,
            p95_latency: p95,
            p99_latency: p99,
            mean_batch_size: if batches > 0 {
                batched as f64 / batches as f64
            } else {
                0.0
            },
        }
    }
}

fn percentiles(nanos: &[u64]) -> (Duration, Duration, Duration) {
    if nanos.is_empty() {
        return (Duration::ZERO, Duration::ZERO, Duration::ZERO);
    }
    let mut sorted = nanos.to_vec();
    sorted.sort_unstable();
    let pick = |q: f64| -> Duration {
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Duration::from_nanos(sorted[idx])
    };
    (pick(0.50), pick(0.95), pick(0.99))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = StatsRecorder::default().snapshot();
        assert_eq!(s.requests, 0);
        assert_eq!(s.p50_latency, Duration::ZERO);
        assert_eq!(s.mean_batch_size, 0.0);
    }

    #[test]
    fn percentiles_over_known_distribution() {
        let rec = StatsRecorder::default();
        for ms in 1..=100u64 {
            rec.request_done(Duration::from_millis(ms), None);
        }
        let s = rec.snapshot();
        assert_eq!(s.completed, 100);
        // Nearest-rank at (len-1) * 0.5 = 49.5 rounds up to index 50.
        assert_eq!(s.p50_latency, Duration::from_millis(51));
        assert_eq!(s.p95_latency, Duration::from_millis(95));
        // (len-1) * 0.99 = 98.01 rounds down to index 98.
        assert_eq!(s.p99_latency, Duration::from_millis(99));
    }

    #[test]
    fn mean_batch_size_tracks_batches() {
        let rec = StatsRecorder::default();
        rec.batch_done(8);
        rec.batch_done(4);
        assert_eq!(rec.snapshot().mean_batch_size, 6.0);
    }
}
