//! The interface every trainable forecasting model implements, shared by
//! D²STGNN, its ablation variants, and the deep-learning baselines so the
//! training loop and the experiment harness treat them uniformly.

use d2stgnn_data::Batch;
use d2stgnn_tensor::nn::Module;
use d2stgnn_tensor::Tensor;
use rand::rngs::StdRng;

/// A multi-step traffic forecasting model trained by gradient descent.
pub trait TrafficModel: Module {
    /// Predict normalized signals for the batch: returns `[B, T_f, N, C_out]`
    /// in the *normalized* scale of `batch.x` (the trainer de-normalizes
    /// before computing losses and metrics).
    fn forward(&self, batch: &Batch, training: bool, rng: &mut StdRng) -> Tensor;

    /// Display name used in experiment tables.
    fn name(&self) -> String;

    /// Forecast horizon the model produces.
    fn horizon(&self) -> usize;
}
