//! Diffusion block: the spatial-temporal localized convolutional layer of
//! Section 5.1 (Eqs. 4–9) with forecast and backcast branches.
//!
//! Implementation note: the paper's block-tiled localized matrix
//! `(P^lc)^k ∈ R^{N × k_t N}` multiplies a stacked feature matrix
//! `X^lc_t ∈ R^{k_t N × d}` whose `k_t` blocks are the lag-projected inputs.
//! Because all `k_t` tiles of `(P^lc)^k` are the same masked `P^k`, the
//! product factorizes as `masked(P^k) · Σ_τ σ(X_{t−τ} W_τ)` — mathematically
//! identical and O(k_t) cheaper; `transition::localized_transition` provides
//! the explicit tiled form used by the equivalence test below.

use crate::forecast::ForecastBranch;
use crate::graphs::{GraphContext, Transitions};
use d2stgnn_graph::CsrMatrix;
use d2stgnn_tensor::nn::{Linear, Mlp, Module};
use d2stgnn_tensor::{Array, Tensor};
use rand::Rng;

/// Configuration slice the diffusion block needs.
#[derive(Clone, Copy, Debug)]
pub struct DiffusionBlockConfig {
    /// Spatial kernel size `k_s`.
    pub ks: usize,
    /// Temporal kernel size `k_t`.
    pub kt: usize,
    /// Hidden width `d`.
    pub hidden: usize,
    /// Forecast horizon `T_f`.
    pub tf: usize,
    /// Use the sliding-AR forecast branch (vs direct multi-step).
    pub autoregressive: bool,
    /// Include the self-adaptive matrix term (Eq. 8's third summand).
    pub use_adaptive: bool,
}

/// Output of one diffusion block.
pub struct DiffusionOutput {
    /// Hidden state sequence `H^dif` `[B, T_h, N, d]` (Eq. 9).
    pub hidden: Tensor,
    /// Forecast hidden states `[B, T_f, N, d]`.
    pub forecast: Tensor,
    /// Backcast reconstruction `[B, T_h, N, d]` (consumed by Eq. 1).
    pub backcast: Tensor,
}

/// The spatial-temporal localized convolution with its two output branches.
pub struct DiffusionBlock {
    cfg: DiffusionBlockConfig,
    /// Per-lag input projections `W_τ` of Eq. 5.
    lag_proj: Vec<Linear>,
    /// Per (matrix, order) output projections `W_{k,m}` of Eq. 8; indexed
    /// `[matrix][k-1]` with matrices ordered forward, backward, adaptive.
    conv_weights: Vec<Vec<Linear>>,
    forecast: ForecastBranch,
    backcast: Mlp,
}

impl DiffusionBlock {
    /// Build the block.
    pub fn new<R: Rng>(cfg: DiffusionBlockConfig, rng: &mut R) -> Self {
        let d = cfg.hidden;
        let lag_proj = (0..cfg.kt).map(|_| Linear::new(d, d, true, rng)).collect();
        let num_matrices = if cfg.use_adaptive { 3 } else { 2 };
        let conv_weights = (0..num_matrices)
            .map(|_| (0..cfg.ks).map(|_| Linear::new(d, d, false, rng)).collect())
            .collect();
        let forecast = if cfg.autoregressive {
            ForecastBranch::sliding(cfg.kt, d, rng)
        } else {
            ForecastBranch::direct(cfg.tf, d, rng)
        };
        Self {
            cfg,
            lag_proj,
            conv_weights,
            forecast,
            backcast: Mlp::new(d, d, d, rng),
        }
    }

    /// Run the block on the gated diffusion signal `x_dif` `[B, T_h, N, d]`.
    ///
    /// `transitions` supplies `P_f`/`P_b` (static or per-window dynamic);
    /// `adaptive` is `P_apt` when enabled. The diagonal of every matrix power
    /// is masked via `ctx.diag_mask` per Eq. 4.
    pub fn forward(
        &self,
        ctx: &GraphContext,
        x_dif: &Tensor,
        transitions: &Transitions,
        adaptive: Option<&Tensor>,
    ) -> DiffusionOutput {
        let shape = x_dif.shape();
        let (b, th, n, d) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(d, self.cfg.hidden, "hidden width mismatch");
        assert_eq!(n, ctx.num_nodes(), "node count mismatch");
        assert!(th >= 1, "empty window");

        // --- Eq. 5: lag-projected features, summed over the temporal kernel.
        // z_t = Σ_{τ=0..kt-1} relu(x_{t-τ} W_τ); out-of-range lags contribute 0.
        let mut z: Option<Tensor> = None;
        for (tau, proj) in self.lag_proj.iter().enumerate() {
            if tau >= th {
                break;
            }
            let projected = proj.forward(x_dif).relu(); // [B, Th, N, d]
            let shifted = if tau == 0 {
                projected
            } else {
                let kept = projected.slice_axis(1, 0, th - tau);
                let pad = Tensor::constant(Array::zeros(&[b, tau, n, d]));
                Tensor::concat(&[&pad, &kept], 1)
            };
            z = Some(match z {
                Some(acc) => acc.add(&shifted),
                None => shifted,
            });
        }
        let Some(z) = z else {
            crate::error::violation("th >= 1 guarantees at least one lag")
        };

        // --- Eq. 8: sum over transition matrices and spatial orders.
        let z_flat = z.reshape(&[b * th, n, d]);
        let mut h: Option<Tensor> = None;
        let mut matrices: Vec<(MatrixRef, &Vec<Linear>)> = Vec::new();
        match transitions {
            Transitions::Static { p_f, p_b } => {
                matrices.push((MatrixRef::Shared(p_f), &self.conv_weights[0]));
                matrices.push((MatrixRef::Shared(p_b), &self.conv_weights[1]));
            }
            Transitions::Sparse { p_f, p_b } => {
                matrices.push((MatrixRef::Sparse(p_f), &self.conv_weights[0]));
                matrices.push((MatrixRef::Sparse(p_b), &self.conv_weights[1]));
            }
            Transitions::Dynamic { p_f, p_b } => {
                matrices.push((MatrixRef::PerWindow(p_f), &self.conv_weights[0]));
                matrices.push((MatrixRef::PerWindow(p_b), &self.conv_weights[1]));
            }
        }
        if self.cfg.use_adaptive {
            let Some(apt) = adaptive else {
                crate::error::violation("use_adaptive requires an adaptive matrix")
            };
            matrices.push((MatrixRef::Shared(apt), &self.conv_weights[2]));
        }

        for (matrix, weights) in matrices {
            let mut power = matrix.first_power();
            for (k, weight) in weights.iter().enumerate().take(self.cfg.ks) {
                let masked = matrix.mask(&power, ctx, b);
                let agg = matrix.apply(&masked, &z_flat, b, th, n, d);
                let term = weight.forward(&agg);
                h = Some(match h {
                    Some(acc) => acc.add(&term),
                    None => term,
                });
                if k + 1 < self.cfg.ks {
                    power = matrix.next_power(&power);
                }
            }
        }
        let Some(h) = h else {
            crate::error::violation("at least one transition matrix is always configured")
        };
        let hidden = h.reshape(&[b, th, n, d]);

        // --- branches operate per node: [B, Th, N, d] -> [B*N, Th, d].
        let per_node = hidden.permute(&[0, 2, 1, 3]).reshape(&[b * n, th, d]);
        let forecast = self
            .forecast
            .forward(&per_node, self.cfg.tf)
            .reshape(&[b, n, self.cfg.tf, d])
            .permute(&[0, 2, 1, 3]);
        let backcast = self.backcast.forward(&hidden);

        DiffusionOutput {
            hidden,
            forecast,
            backcast,
        }
    }
}

/// A shared `[N, N]` matrix (dense or CSR) or a per-window `[B, N, N]`
/// batch of dense ones.
enum MatrixRef<'a> {
    Shared(&'a Tensor),
    Sparse(&'a CsrMatrix),
    PerWindow(&'a Tensor),
}

/// A transition power `P^k` in the same representation as its base matrix.
enum MatrixPower {
    Dense(Tensor),
    Sparse(CsrMatrix),
}

impl MatrixPower {
    fn dense(&self) -> &Tensor {
        match self {
            MatrixPower::Dense(t) => t,
            MatrixPower::Sparse(_) => crate::error::violation("expected a dense transition power"),
        }
    }

    fn sparse(&self) -> &CsrMatrix {
        match self {
            MatrixPower::Sparse(c) => c,
            MatrixPower::Dense(_) => crate::error::violation("expected a sparse transition power"),
        }
    }
}

impl MatrixRef<'_> {
    /// `P^1`, in the base matrix's representation.
    fn first_power(&self) -> MatrixPower {
        match self {
            MatrixRef::Shared(t) | MatrixRef::PerWindow(t) => MatrixPower::Dense((*t).clone()),
            MatrixRef::Sparse(c) => MatrixPower::Sparse((*c).clone()),
        }
    }

    /// `P^{k+1}` from `P^k` (right-multiplied by the base matrix).
    fn next_power(&self, power: &MatrixPower) -> MatrixPower {
        match self {
            MatrixRef::Shared(base) | MatrixRef::PerWindow(base) => {
                MatrixPower::Dense(power.dense().matmul(base))
            }
            MatrixRef::Sparse(base) => MatrixPower::Sparse(crate::error::require(
                power.sparse().matmul_sparse(base),
                "transition powers share the base matrix's shape",
            )),
        }
    }

    /// Zero the diagonal (Eq. 4's `⊙ (1 - I_N)`).
    fn mask(&self, power: &MatrixPower, ctx: &GraphContext, b: usize) -> MatrixPower {
        match self {
            MatrixRef::Shared(_) => MatrixPower::Dense(power.dense().mul(ctx.diag_mask())),
            // The CSR mask zeroes stored diagonal values in place — no
            // dense [N, N] mask tensor is ever needed.
            MatrixRef::Sparse(_) => MatrixPower::Sparse(power.sparse().mask_diagonal()),
            MatrixRef::PerWindow(_) => {
                let n = ctx.num_nodes();
                MatrixPower::Dense(
                    power
                        .dense()
                        .mul(&ctx.diag_mask().reshape(&[1, n, n]).broadcast_to(&[b, n, n])),
                )
            }
        }
    }

    /// `masked_P · z` for every (window, time) pair; `z_flat` is `[B*Th, N, d]`.
    fn apply(
        &self,
        masked: &MatrixPower,
        z_flat: &Tensor,
        b: usize,
        th: usize,
        n: usize,
        _d: usize,
    ) -> Tensor {
        match self {
            // [N,N] x [B*Th, N, d] broadcasts over the batch.
            MatrixRef::Shared(_) => masked.dense().matmul(z_flat),
            // The pooled sparse spmm autograd op: the matrix is a constant,
            // gradients flow into z through the transposed CSR.
            MatrixRef::Sparse(_) => Tensor::spmm(masked.sparse().as_sparse(), z_flat),
            // Per-window matrices must be repeated across the Th axis first.
            MatrixRef::PerWindow(_) => {
                let idx: Vec<usize> = (0..b).flat_map(|bi| std::iter::repeat_n(bi, th)).collect();
                let tiled = masked.dense().index_select(0, &idx); // [B*Th, N, N]
                debug_assert_eq!(tiled.shape()[0], b * th);
                debug_assert_eq!(tiled.shape()[1], n);
                tiled.matmul(z_flat)
            }
        }
    }
}

impl Module for DiffusionBlock {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p: Vec<Tensor> = self.lag_proj.iter().flat_map(|l| l.parameters()).collect();
        for group in &self.conv_weights {
            for w in group {
                p.extend(w.parameters());
            }
        }
        p.extend(self.forecast.parameters());
        p.extend(self.backcast.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2stgnn_graph::{transition, TrafficNetwork};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> DiffusionBlockConfig {
        DiffusionBlockConfig {
            ks: 2,
            kt: 2,
            hidden: 6,
            tf: 4,
            autoregressive: true,
            use_adaptive: false,
        }
    }

    fn setup(n: usize) -> (GraphContext, StdRng) {
        let mut rng = StdRng::seed_from_u64(3);
        let net = TrafficNetwork::random_geometric(n, 3, 0.02, &mut rng);
        (GraphContext::new(&net), rng)
    }

    #[test]
    fn output_shapes_static() {
        let (ctx, mut rng) = setup(7);
        let block = DiffusionBlock::new(cfg(), &mut rng);
        let x = Tensor::constant(Array::randn(&[2, 5, 7, 6], &mut rng));
        let tr = Transitions::Static {
            p_f: ctx.p_f().clone(),
            p_b: ctx.p_b().clone(),
        };
        let out = block.forward(&ctx, &x, &tr, None);
        assert_eq!(out.hidden.shape(), vec![2, 5, 7, 6]);
        assert_eq!(out.forecast.shape(), vec![2, 4, 7, 6]);
        assert_eq!(out.backcast.shape(), vec![2, 5, 7, 6]);
    }

    #[test]
    fn output_shapes_dynamic_and_adaptive() {
        let (ctx, mut rng) = setup(7);
        let mut c = cfg();
        c.use_adaptive = true;
        c.autoregressive = false;
        let block = DiffusionBlock::new(c, &mut rng);
        let x = Tensor::constant(Array::randn(&[2, 5, 7, 6], &mut rng));
        // Fake dynamic graphs: reuse the static ones per window.
        let pf = ctx.p_f().reshape(&[1, 7, 7]).broadcast_to(&[2, 7, 7]);
        let pb = ctx.p_b().reshape(&[1, 7, 7]).broadcast_to(&[2, 7, 7]);
        let apt = Tensor::constant(transition::row_normalize(&Array::ones(&[7, 7])));
        let tr = Transitions::Dynamic { p_f: pf, p_b: pb };
        let out = block.forward(&ctx, &x, &tr, Some(&apt));
        assert_eq!(out.hidden.shape(), vec![2, 5, 7, 6]);
        assert_eq!(out.forecast.shape(), vec![2, 4, 7, 6]);
    }

    #[test]
    fn dynamic_with_static_values_matches_static_path() {
        // Feeding the static matrices through the dynamic code path must give
        // identical hidden states (the tiling logic is value-preserving).
        let (ctx, mut rng) = setup(6);
        let block = DiffusionBlock::new(cfg(), &mut rng);
        let x = Tensor::constant(Array::randn(&[3, 4, 6, 6], &mut rng));
        let st = Transitions::Static {
            p_f: ctx.p_f().clone(),
            p_b: ctx.p_b().clone(),
        };
        let dy = Transitions::Dynamic {
            p_f: ctx.p_f().reshape(&[1, 6, 6]).broadcast_to(&[3, 6, 6]),
            p_b: ctx.p_b().reshape(&[1, 6, 6]).broadcast_to(&[3, 6, 6]),
        };
        let h_st = block.forward(&ctx, &x, &st, None).hidden.value();
        let h_dy = block.forward(&ctx, &x, &dy, None).hidden.value();
        for (a, b) in h_st.data().iter().zip(h_dy.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn sparse_path_matches_dense_path_exactly() {
        // The CSR transitions hold the same values as the dense tensors, so
        // the sparse diffusion path must reproduce the dense hidden states,
        // branches, and input gradients exactly (the spmm kernel skips only
        // zero terms, which cannot change a finite accumulation).
        let (ctx, mut rng) = setup(6);
        let mut c = cfg();
        c.ks = 3; // exercise the spgemm power chain too
        let block = DiffusionBlock::new(c, &mut rng);
        let base = Array::randn(&[2, 4, 6, 6], &mut rng);
        let st = Transitions::Static {
            p_f: ctx.p_f().clone(),
            p_b: ctx.p_b().clone(),
        };
        let sp = Transitions::Sparse {
            p_f: CsrMatrix::from_dense(&ctx.p_f().value(), 0.0).unwrap(),
            p_b: CsrMatrix::from_dense(&ctx.p_b().value(), 0.0).unwrap(),
        };
        let x_dense = Tensor::parameter(base.clone());
        let x_sparse = Tensor::parameter(base);
        let dense_out = block.forward(&ctx, &x_dense, &st, None);
        let sparse_out = block.forward(&ctx, &x_sparse, &sp, None);
        assert_eq!(
            dense_out.hidden.value().data(),
            sparse_out.hidden.value().data(),
            "hidden states diverged between dense and sparse transitions"
        );
        assert_eq!(
            dense_out.forecast.value().data(),
            sparse_out.forecast.value().data()
        );
        assert_eq!(
            dense_out.backcast.value().data(),
            sparse_out.backcast.value().data()
        );
        dense_out.hidden.sum_all().backward();
        sparse_out.hidden.sum_all().backward();
        let gd = x_dense.grad().expect("dense grad");
        let gs = x_sparse.grad().expect("sparse grad");
        for (a, b) in gd.data().iter().zip(gs.data()) {
            assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn factored_form_matches_explicit_eq4_tiling() {
        // One matrix, ks=1: H_t = masked(P) Σ_τ relu(x_{t-τ} W_τ) W must equal
        // the explicit (P^lc)^1 X^lc product of Eqs. 4-6.
        let (ctx, mut rng) = setup(5);
        let mut c = cfg();
        c.ks = 1;
        c.kt = 2;
        let block = DiffusionBlock::new(c, &mut rng);
        let x = Array::randn(&[1, 3, 5, 6], &mut rng);
        let tr = Transitions::Static {
            p_f: ctx.p_f().clone(),
            p_b: Tensor::constant(Array::zeros(&[5, 5])), // isolate P_f term
        };
        let out = block.forward(&ctx, &Tensor::constant(x.clone()), &tr, None);

        // Explicit Eq. 4 route for the last time step t = 2.
        let p_lc = transition::localized_transition(&ctx.p_f().value(), 1, 2).unwrap(); // [5, 10]
                                                                                        // X^lc stacks lag τ=1 then τ=0 blocks (older first per Eq. 5).
        let w_relu = |tau: usize, t: usize| -> Array {
            let xt = Tensor::constant(x.slice_axis(1, t, t + 1).reshape(&[5, 6]).unwrap());
            block.lag_proj[tau].forward(&xt).relu().value()
        };
        let x_lc = Array::concat(&[&w_relu(1, 1), &w_relu(0, 2)], 0).unwrap(); // [10, 6]
        let prod = Tensor::constant(p_lc.matmul(&x_lc)); // [5, 6]
        let explicit = block.conv_weights[0][0].forward(&prod).value();
        let factored = out.hidden.value().slice_axis(1, 2, 3); // t = 2
        for i in 0..5 {
            for j in 0..6 {
                let a = explicit.at(&[i, j]);
                let b = factored.at(&[0, 0, i, j]);
                assert!((a - b).abs() < 1e-3, "mismatch at ({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn own_history_is_invisible_to_diffusion() {
        // Eq. 4 masks the diagonal of every P^k: a node's diffusion hidden
        // state must never depend on its own input. Use a dense 2-node graph
        // with self-loops so every P^k (k = 1, 2) is all-0.5 BEFORE masking —
        // only the mask can remove the self-term.
        let mut rng = StdRng::seed_from_u64(9);
        let net = TrafficNetwork::from_adjacency(2, vec![1., 1., 1., 1.], vec![]);
        let ctx = GraphContext::new(&net);
        let mut c = cfg();
        c.ks = 2;
        let block = DiffusionBlock::new(c, &mut rng);
        let base = Array::randn(&[1, 4, 2, 6], &mut rng);
        let mut bumped = base.clone();
        // Perturb node 0's inputs at all times.
        for t in 0..4 {
            for j in 0..6 {
                let idx = t * 2 * 6 + j;
                bumped.data_mut()[idx] += 5.0;
            }
        }
        let tr = Transitions::Static {
            p_f: Tensor::constant(transition::forward_transition(&net.adjacency())),
            p_b: Tensor::constant(Array::zeros(&[2, 2])),
        };
        let h0 = block
            .forward(&ctx, &Tensor::constant(base), &tr, None)
            .hidden
            .value();
        let h1 = block
            .forward(&ctx, &Tensor::constant(bumped), &tr, None)
            .hidden
            .value();
        // Node 0's hidden state is unchanged: its only source, after the
        // diagonal mask, is node 1's (unperturbed) input.
        for t in 0..4 {
            for j in 0..6 {
                assert_eq!(h0.at(&[0, t, 0, j]), h1.at(&[0, t, 0, j]));
            }
        }
        // Node 1's hidden state changes (it aggregates node 0).
        let moved: f32 = (0..6)
            .map(|j| (h0.at(&[0, 3, 1, j]) - h1.at(&[0, 3, 1, j])).abs())
            .sum();
        assert!(moved > 1e-6);
    }

    #[test]
    fn gradients_flow_everywhere() {
        let (ctx, mut rng) = setup(6);
        let mut c = cfg();
        c.use_adaptive = true;
        let block = DiffusionBlock::new(c, &mut rng);
        let x = Tensor::parameter(Array::randn(&[2, 4, 6, 6], &mut rng));
        let apt = Tensor::parameter(transition::row_normalize(&Array::ones(&[6, 6])));
        let tr = Transitions::Static {
            p_f: ctx.p_f().clone(),
            p_b: ctx.p_b().clone(),
        };
        let out = block.forward(&ctx, &x, &tr, Some(&apt));
        out.hidden
            .sum_all()
            .add(&out.forecast.sum_all())
            .add(&out.backcast.sum_all())
            .backward();
        assert!(x.grad().is_some());
        assert!(apt.grad().is_some(), "adaptive matrix must be trainable");
        for (i, p) in block.parameters().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} missing grad");
        }
    }
}
