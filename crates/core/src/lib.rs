//! # d2stgnn-core
//!
//! The paper's primary contribution: the Decoupled Spatial-Temporal
//! Framework (DSTF) and its instantiation **D²STGNN** (Shao et al.,
//! VLDB 2022), plus the training loop.
//!
//! Architecture map (paper section → module):
//! * Eq. 3 estimation gate → [`gate`]
//! * Eqs. 1–2 residual decomposition → [`layer`]
//! * Eqs. 4–9 diffusion block (ST-localized convolution) → [`diffusion`]
//! * Eqs. 10–12 inherent block (GRU + positional encoding + MSA) → [`inherent`]
//! * Eq. 7 self-adaptive matrix, Eqs. 13–14 dynamic graph → [`graphs`]
//! * Eq. 15 output composition, Eq. 16 MAE + curriculum → [`model`], [`training`]
//!
//! Every ablation of Table 5 is a flag on [`D2stgnnConfig`].

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod checkpoint;
pub mod config;
pub mod diffusion;
pub mod embeddings;
pub mod error;
pub mod forecast;
pub mod gate;
pub mod graphs;
pub mod inherent;
pub mod layer;
pub mod model;
pub mod training;
pub mod traits;

pub use checkpoint::{load as load_checkpoint, save as save_checkpoint, Checkpoint, TrainState};
pub use config::{BlockOrder, D2stgnnConfig};
pub use error::{CheckpointError, ConfigError, TrainError};
pub use model::D2stgnn;
pub use training::{EvalResult, TrainConfig, TrainReport, Trainer};
pub use traits::TrafficModel;
