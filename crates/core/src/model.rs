//! The full D²STGNN model (Figure 3, Algorithm 1): input projection, shared
//! embeddings, optional dynamic graph learner, `L` stacked decoupled
//! spatial-temporal layers, and the output regression over the summed
//! forecast hidden states (Eq. 15).

use crate::config::D2stgnnConfig;
use crate::embeddings::SharedEmbeddings;
use crate::graphs::{adaptive_transition, DynamicGraphLearner, GraphContext, Transitions};
use crate::layer::DecoupledLayer;
use crate::traits::TrafficModel;
use d2stgnn_data::Batch;
use d2stgnn_graph::TrafficNetwork;
use d2stgnn_tensor::nn::{Linear, Mlp, Module};
use d2stgnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Decoupled Dynamic Spatial-Temporal Graph Neural Network.
pub struct D2stgnn {
    cfg: D2stgnnConfig,
    ctx: GraphContext,
    embeddings: SharedEmbeddings,
    input_proj: Linear,
    dynamic_graph: Option<DynamicGraphLearner>,
    layers: Vec<DecoupledLayer>,
    regression: Mlp,
}

impl D2stgnn {
    /// Build the model for a road network.
    ///
    /// # Panics
    /// If the config fails validation or disagrees with the network size.
    pub fn new<R: Rng>(cfg: D2stgnnConfig, network: &TrafficNetwork, rng: &mut R) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| crate::error::violation(e));
        assert_eq!(
            cfg.num_nodes,
            network.num_nodes(),
            "config is for {} nodes but the network has {}",
            cfg.num_nodes,
            network.num_nodes()
        );
        Self::with_context(cfg, GraphContext::new(network), rng)
    }

    /// Build the model for a city-scale sparse network. The static
    /// transitions stay in CSR form end to end — no dense `[N, N]` tensor
    /// is ever materialized, so this scales to 100k-node graphs.
    ///
    /// # Panics
    /// If the config fails validation, disagrees with the network size, or
    /// enables a feature that inherently needs dense `[N, N]` matrices
    /// (`use_dynamic_graph`, `use_adaptive` — both build per-entry attention
    /// products that are O(N²) by construction).
    pub fn new_sparse<R: Rng>(
        cfg: D2stgnnConfig,
        network: &d2stgnn_graph::SparseNetwork,
        rng: &mut R,
    ) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| crate::error::violation(e));
        assert_eq!(
            cfg.num_nodes,
            network.num_nodes(),
            "config is for {} nodes but the network has {}",
            cfg.num_nodes,
            network.num_nodes()
        );
        if cfg.use_dynamic_graph || cfg.use_adaptive {
            crate::error::violation(
                "dynamic graph and adaptive matrices are O(N^2) dense by construction; \
                 disable use_dynamic_graph and use_adaptive for sparse city-scale models",
            );
        }
        Self::with_context(cfg, GraphContext::from_sparse(network), rng)
    }

    /// Shared constructor core. Consumes the rng in the same order for
    /// every context kind, so dense- and sparse-context models built from
    /// the same seed get identical initial weights (the equivalence tests
    /// rely on this).
    fn with_context<R: Rng>(cfg: D2stgnnConfig, ctx: GraphContext, rng: &mut R) -> Self {
        let embeddings = SharedEmbeddings::new(cfg.num_nodes, cfg.steps_per_day, cfg.emb_dim, rng);
        let input_proj = Linear::new(cfg.in_channels, cfg.hidden, true, rng);
        let dynamic_graph = cfg
            .use_dynamic_graph
            .then(|| DynamicGraphLearner::new(cfg.th, cfg.hidden, cfg.emb_dim, cfg.hidden, rng));
        let layers = (0..cfg.layers)
            .map(|_| DecoupledLayer::new(&cfg, rng))
            .collect();
        let regression = Mlp::new(cfg.hidden, cfg.hidden, cfg.out_channels, rng);
        Self {
            cfg,
            ctx,
            embeddings,
            input_proj,
            dynamic_graph,
            layers,
            regression,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &D2stgnnConfig {
        &self.cfg
    }

    /// Shared embeddings (exposed for analysis / visualization).
    pub fn embeddings(&self) -> &SharedEmbeddings {
        &self.embeddings
    }

    /// Decompose a batch into per-layer diffusion/inherent forecast energies;
    /// used by the signal-decoupling analyses (`decouple_signals` example).
    /// Returns `(dif_forecast, inh_forecast)` summed over layers,
    /// each `[B, T_f, N, d]`.
    pub fn decompose(&self, batch: &Batch, rng: &mut StdRng) -> (Tensor, Tensor) {
        let (dif, inh, _) = self.forward_parts(batch, false, rng);
        (dif, inh)
    }

    /// Shared forward core returning the per-branch sums and the final input
    /// projection, so both `forward` and `decompose` stay in sync.
    fn forward_parts(
        &self,
        batch: &Batch,
        training: bool,
        rng: &mut StdRng,
    ) -> (Tensor, Tensor, Tensor) {
        let shape = batch.x.shape();
        assert_eq!(shape.len(), 4, "batch.x must be [B, Th, N, C]");
        let (b, th, n, c) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(th, self.cfg.th, "window length mismatch");
        assert_eq!(n, self.cfg.num_nodes, "node count mismatch");
        assert_eq!(c, self.cfg.in_channels, "channel mismatch");

        // Project raw signals into the latent space.
        let x0 = self.input_proj.forward(&Tensor::constant(batch.x.clone()));

        // Algorithm 1 line 1: self-adaptive matrix (Eq. 7).
        let adaptive = self
            .cfg
            .use_adaptive
            .then(|| adaptive_transition(&self.embeddings));

        // Algorithm 1 line 2: dynamic transitions (Eq. 14), one per window.
        let transitions = match &self.dynamic_graph {
            Some(dg) => {
                let tod_last: Vec<usize> = (0..b).map(|bi| batch.tod[(bi + 1) * th - 1]).collect();
                let dow_last: Vec<usize> = (0..b).map(|bi| batch.dow[(bi + 1) * th - 1]).collect();
                let (p_f, p_b) = dg.forward(&self.ctx, &self.embeddings, &x0, &tod_last, &dow_last);
                Transitions::Dynamic { p_f, p_b }
            }
            // The CSR representation, when present, is the hot path: same
            // values as the dense tensors, O(nnz) instead of O(N²) per
            // diffusion step.
            None => match self.ctx.sparse_transitions() {
                Some((p_f, p_b)) => Transitions::Sparse {
                    p_f: p_f.clone(),
                    p_b: p_b.clone(),
                },
                None => Transitions::Static {
                    p_f: self.ctx.p_f().clone(),
                    p_b: self.ctx.p_b().clone(),
                },
            },
        };

        // Algorithm 1 lines 5-12: stacked decoupled layers.
        let mut x_l = x0;
        let mut dif_sum: Option<Tensor> = None;
        let mut inh_sum: Option<Tensor> = None;
        for layer in &self.layers {
            let out = layer.forward(
                &self.ctx,
                &self.embeddings,
                &x_l,
                &transitions,
                adaptive.as_ref(),
                &batch.tod,
                &batch.dow,
                training,
                rng,
            );
            dif_sum = Some(match dif_sum {
                Some(acc) => acc.add(&out.forecast_dif),
                None => out.forecast_dif,
            });
            inh_sum = Some(match inh_sum {
                Some(acc) => acc.add(&out.forecast_inh),
                None => out.forecast_inh,
            });
            x_l = out.residual;
        }
        let (Some(dif), Some(inh)) = (dif_sum, inh_sum) else {
            crate::error::violation("at least one layer is guaranteed by config validation")
        };
        (dif, inh, x_l)
    }
}

impl TrafficModel for D2stgnn {
    fn forward(&self, batch: &Batch, training: bool, rng: &mut StdRng) -> Tensor {
        let (dif, inh, _) = self.forward_parts(batch, training, rng);
        // Eq. 15: H = Σ_l (H_f^dif,l + H_f^inh,l); then a two-layer FC
        // regression maps each future hidden state to the output channels.
        let h = dif.add(&inh);
        self.regression.forward(&h)
    }

    fn name(&self) -> String {
        match self.cfg.variant_tag().as_str() {
            "full" => "D2STGNN".to_string(),
            "w/o dg" => "D2STGNN+".to_string(), // the static-graph D²STGNN†
            tag => format!("D2STGNN ({tag})"),
        }
    }

    fn horizon(&self) -> usize {
        self.cfg.tf
    }
}

impl Module for D2stgnn {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.embeddings.parameters();
        p.extend(self.input_proj.parameters());
        if let Some(dg) = &self.dynamic_graph {
            p.extend(dg.parameters());
        }
        for layer in &self.layers {
            p.extend(layer.parameters());
        }
        p.extend(self.regression.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2stgnn_data::{simulate, SimulatorConfig, Split, WindowedDataset};
    use rand::SeedableRng;

    fn tiny_setup(cfg_mut: impl FnOnce(&mut D2stgnnConfig)) -> (D2stgnn, WindowedDataset, StdRng) {
        let mut sim = SimulatorConfig::tiny();
        sim.num_nodes = 8;
        sim.knn = 3;
        let data = simulate(&sim);
        let windowed = WindowedDataset::new(data, 12, 12, (0.7, 0.1, 0.2));
        let mut cfg = D2stgnnConfig::small(8);
        cfg_mut(&mut cfg);
        let mut rng = StdRng::seed_from_u64(0);
        let model = D2stgnn::new(cfg, &windowed.data().network.clone(), &mut rng);
        (model, windowed, rng)
    }

    #[test]
    fn forward_shapes() {
        let (model, windowed, mut rng) = tiny_setup(|_| {});
        let batch = windowed.batch(Split::Train, &[0, 1, 2]);
        let pred = model.forward(&batch, false, &mut rng);
        assert_eq!(pred.shape(), vec![3, 12, 8, 1]);
        assert!(!pred.value().has_non_finite());
        assert_eq!(model.horizon(), 12);
    }

    #[test]
    fn every_table5_variant_forward_passes() {
        type Variant = (&'static str, Box<dyn Fn(&mut D2stgnnConfig)>);
        let variants: Vec<Variant> = vec![
            (
                "switch",
                Box::new(|c: &mut D2stgnnConfig| {
                    c.order = crate::config::BlockOrder::InherentFirst;
                }),
            ),
            ("w/o gate", Box::new(|c| c.use_gate = false)),
            ("w/o res", Box::new(|c| c.use_residual = false)),
            (
                "w/o decouple",
                Box::new(|c| {
                    c.use_gate = false;
                    c.use_residual = false;
                }),
            ),
            ("w/o dg", Box::new(|c| c.use_dynamic_graph = false)),
            ("w/o apt", Box::new(|c| c.use_adaptive = false)),
            ("w/o gru", Box::new(|c| c.use_gru = false)),
            ("w/o msa", Box::new(|c| c.use_msa = false)),
            ("w/o ar", Box::new(|c| c.use_autoregressive = false)),
        ];
        for (tag, f) in variants {
            let (model, windowed, mut rng) = tiny_setup(f);
            let batch = windowed.batch(Split::Train, &[0]);
            let pred = model.forward(&batch, true, &mut rng);
            assert_eq!(pred.shape(), vec![1, 12, 8, 1], "variant {tag}");
            assert!(!pred.value().has_non_finite(), "variant {tag} produced NaN");
        }
    }

    #[test]
    fn dynamic_graph_adds_parameters() {
        let (dynamic, _, _) = tiny_setup(|_| {});
        let (static_g, _, _) = tiny_setup(|c| c.use_dynamic_graph = false);
        assert!(dynamic.num_parameters() > static_g.num_parameters());
        assert_eq!(static_g.name(), "D2STGNN+");
        assert_eq!(dynamic.name(), "D2STGNN");
    }

    #[test]
    fn one_training_step_reduces_loss() {
        let (model, windowed, rng) = tiny_setup(|c| c.layers = 1);
        let batch = windowed.batch(Split::Train, &[0, 1]);
        let scaler = *windowed.scaler();
        let target = Tensor::constant(batch.y.clone());
        let loss_of = |m: &D2stgnn, rng: &mut StdRng| {
            let pred_norm = m.forward(&batch, true, rng);
            let pred = pred_norm.scale(scaler.std()).add_scalar(scaler.mean());
            d2stgnn_tensor::losses::masked_mae_loss(&pred, &target, 0.0)
        };
        // Evaluate both losses from the same rng state (identical dropout
        // masks) and keep the step small: Adam's first update is roughly
        // lr * sign(grad) per element, which overshoots at larger rates.
        let l0 = loss_of(&model, &mut rng.clone());
        l0.backward();
        let mut opt = d2stgnn_tensor::optim::Adam::new(model.parameters(), 1e-3);
        use d2stgnn_tensor::optim::Optimizer;
        opt.step();
        let l1 = loss_of(&model, &mut rng.clone());
        assert!(
            l1.item() < l0.item(),
            "loss did not decrease: {} -> {}",
            l0.item(),
            l1.item()
        );
    }

    #[test]
    fn gradients_reach_every_live_parameter() {
        let (model, windowed, mut rng) = tiny_setup(|_| {});
        let batch = windowed.batch(Split::Train, &[0]);
        let pred = model.forward(&batch, true, &mut rng);
        pred.sum_all().backward();
        let missing: Vec<usize> = model
            .parameters()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.grad().is_none())
            .map(|(i, _)| i)
            .collect();
        // The ONLY dead parameters are the final layer's inherent backcast
        // MLP (4 tensors): its output, the residual X^{L}, is never consumed
        // (Algorithm 1 stops at the last layer). Everything else must train.
        let total = model.parameters().len();
        let expected: Vec<usize> = (total - 8..total - 4).collect();
        assert_eq!(missing, expected, "unexpected dead parameters");
    }

    #[test]
    fn decompose_returns_branch_forecasts() {
        let (model, windowed, mut rng) = tiny_setup(|_| {});
        let batch = windowed.batch(Split::Train, &[0, 1]);
        let (dif, inh) = model.decompose(&batch, &mut rng);
        assert_eq!(dif.shape(), vec![2, 12, 8, 16]);
        assert_eq!(inh.shape(), vec![2, 12, 8, 16]);
        assert_ne!(dif.value().data(), inh.value().data());
    }

    #[test]
    fn sparse_context_forecasts_match_dense_bitwise() {
        // Same seed, same data, same weights — one model forced onto the
        // dense transition path, one onto the CSR path. Forecasts must be
        // bit-identical: the sparse kernels only skip zero terms.
        let mut sim = SimulatorConfig::tiny();
        sim.num_nodes = 8;
        sim.knn = 3;
        let data = simulate(&sim);
        let windowed = WindowedDataset::new(data, 12, 12, (0.7, 0.1, 0.2));
        let net = windowed.data().network.clone();
        let mut cfg = D2stgnnConfig::small(8);
        cfg.use_dynamic_graph = false;
        cfg.use_adaptive = false;

        let mut rng_a = StdRng::seed_from_u64(0);
        let dense = D2stgnn::with_context(
            cfg.clone(),
            GraphContext::with_threshold(&net, 2.0),
            &mut rng_a,
        );
        let mut rng_b = StdRng::seed_from_u64(0);
        let sparse =
            D2stgnn::with_context(cfg, GraphContext::with_threshold(&net, 0.0), &mut rng_b);
        assert!(dense.ctx.sparse_transitions().is_none());
        assert!(sparse.ctx.sparse_transitions().is_some());

        let batch = windowed.batch(Split::Train, &[0, 1]);
        let pa = dense.forward(&batch, false, &mut rng_a).value();
        let pb = sparse.forward(&batch, false, &mut rng_b).value();
        for (a, b) in pa.data().iter().zip(pb.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn sparse_network_model_runs_end_to_end() {
        let mut sim = SimulatorConfig::tiny();
        sim.num_nodes = 8;
        sim.knn = 3;
        let data = simulate(&sim);
        let windowed = WindowedDataset::new(data, 12, 12, (0.7, 0.1, 0.2));
        let city = d2stgnn_graph::SparseNetwork::from_network(&windowed.data().network);
        let mut cfg = D2stgnnConfig::small(8);
        cfg.use_dynamic_graph = false;
        cfg.use_adaptive = false;
        let mut rng = StdRng::seed_from_u64(0);
        let model = D2stgnn::new_sparse(cfg, &city, &mut rng);
        let batch = windowed.batch(Split::Train, &[0, 1, 2]);
        let pred = model.forward(&batch, false, &mut rng);
        assert_eq!(pred.shape(), vec![3, 12, 8, 1]);
        assert!(!pred.value().has_non_finite());
        // Training works too: gradients flow through the spmm ops.
        let pred_t = model.forward(&batch, true, &mut rng);
        pred_t.sum_all().backward();
        let with_grad = model
            .parameters()
            .iter()
            .filter(|p| p.grad().is_some())
            .count();
        assert!(with_grad > 0, "no parameter received a gradient");
    }

    #[test]
    #[should_panic(expected = "use_dynamic_graph")]
    fn new_sparse_rejects_dense_only_features() {
        let mut rng = StdRng::seed_from_u64(0);
        let city = d2stgnn_graph::SparseNetwork::random_city(8, 3, 0.05, &mut rng);
        // `small` enables the dynamic graph, which is O(N²) by construction.
        D2stgnn::new_sparse(D2stgnnConfig::small(8), &city, &mut rng);
    }

    #[test]
    #[should_panic(expected = "network has")]
    fn node_count_mismatch_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = d2stgnn_graph::TrafficNetwork::random_geometric(5, 2, 0.02, &mut rng);
        D2stgnn::new(D2stgnnConfig::small(8), &net, &mut rng);
    }
}
