//! The decoupled spatial-temporal layer (Section 4): estimation gate (Eq. 3),
//! first block, residual decomposition (Eq. 1), second block, second residual
//! (Eq. 2). Block order is configurable (`switch` ablation), and the gate /
//! residual links can be disabled individually (Table 5) or together, which
//! yields the *coupled* D²STGNN‡ of Table 4 where the blocks chain directly.

use crate::config::{BlockOrder, D2stgnnConfig};
use crate::diffusion::{DiffusionBlock, DiffusionBlockConfig};
use crate::embeddings::SharedEmbeddings;
use crate::gate::EstimationGate;
use crate::graphs::{GraphContext, Transitions};
use crate::inherent::{InherentBlock, InherentBlockConfig};
use d2stgnn_tensor::nn::Module;
use d2stgnn_tensor::{Array, Tensor};
use rand::rngs::StdRng;
use rand::Rng;

/// Output of one decoupled layer.
pub struct LayerOutput {
    /// Diffusion forecast hidden states `[B, T_f, N, d]`.
    pub forecast_dif: Tensor,
    /// Inherent forecast hidden states `[B, T_f, N, d]`.
    pub forecast_inh: Tensor,
    /// Residual signal `X^{l+1}` fed to the next layer `[B, T_h, N, d]`.
    pub residual: Tensor,
}

/// One decoupled spatial-temporal layer.
pub struct DecoupledLayer {
    gate: Option<EstimationGate>,
    diffusion: DiffusionBlock,
    inherent: InherentBlock,
    order: BlockOrder,
    use_residual: bool,
}

impl DecoupledLayer {
    /// Build a layer from the model config.
    pub fn new<R: Rng>(cfg: &D2stgnnConfig, rng: &mut R) -> Self {
        let gate = cfg
            .use_gate
            .then(|| EstimationGate::new(cfg.emb_dim, cfg.hidden, rng));
        let diffusion = DiffusionBlock::new(
            DiffusionBlockConfig {
                ks: cfg.ks,
                kt: cfg.kt,
                hidden: cfg.hidden,
                tf: cfg.tf,
                autoregressive: cfg.use_autoregressive,
                use_adaptive: cfg.use_adaptive,
            },
            rng,
        );
        let inherent = InherentBlock::new(
            InherentBlockConfig {
                hidden: cfg.hidden,
                heads: cfg.heads,
                tf: cfg.tf,
                kt: cfg.kt,
                autoregressive: cfg.use_autoregressive,
                use_gru: cfg.use_gru,
                use_msa: cfg.use_msa,
                dropout: cfg.dropout,
            },
            rng,
        );
        Self {
            gate,
            diffusion,
            inherent,
            order: cfg.order,
            use_residual: cfg.use_residual,
        }
    }

    /// Run the layer.
    ///
    /// * `x_l` — the layer input `X^l` `[B, T_h, N, d]`.
    /// * `tod`/`dow` — flat `[B*T_h]` slot indices for the estimation gate.
    #[allow(clippy::too_many_arguments)]
    pub fn forward(
        &self,
        ctx: &GraphContext,
        emb: &SharedEmbeddings,
        x_l: &Tensor,
        transitions: &Transitions,
        adaptive: Option<&Tensor>,
        tod: &[usize],
        dow: &[usize],
        training: bool,
        rng: &mut StdRng,
    ) -> LayerOutput {
        let shape = x_l.shape();
        let (b, th, n, _d) = (shape[0], shape[1], shape[2], shape[3]);
        let lam = self
            .gate
            .as_ref()
            .map(|g| g.forward(emb, tod, dow, b, th, n));
        let gate_in = |x: &Tensor| match &lam {
            Some(l) => l.mul(x),
            None => x.clone(),
        };
        // Complement gate (1 - Λ) ⊙ x, used when residual links are ablated
        // but the gate is kept: the second block then receives the gate's
        // estimate of "its" share of the signal instead of a residual.
        let gate_complement = |x: &Tensor| match &lam {
            Some(l) => {
                let ones = Tensor::constant(Array::ones(&l.shape()));
                ones.sub(l).mul(x)
            }
            None => x.clone(),
        };
        let coupled = self.gate.is_none() && !self.use_residual;

        match self.order {
            BlockOrder::DiffusionFirst => {
                let dif = self
                    .diffusion
                    .forward(ctx, &gate_in(x_l), transitions, adaptive);
                // Eq. 1: X^inh = X^l - X_b^dif.
                let x_inh = if self.use_residual {
                    x_l.sub(&dif.backcast)
                } else if coupled {
                    dif.hidden.clone()
                } else {
                    gate_complement(x_l)
                };
                let inh = self.inherent.forward(&x_inh, training, rng);
                // Eq. 2: X^{l+1} = X^inh - X_b^inh.
                let residual = if self.use_residual {
                    x_inh.sub(&inh.backcast)
                } else {
                    inh.hidden.clone()
                };
                LayerOutput {
                    forecast_dif: dif.forecast,
                    forecast_inh: inh.forecast,
                    residual,
                }
            }
            BlockOrder::InherentFirst => {
                let inh = self.inherent.forward(&gate_complement(x_l), training, rng);
                let x_dif = if self.use_residual {
                    x_l.sub(&inh.backcast)
                } else if coupled {
                    inh.hidden.clone()
                } else {
                    gate_in(x_l)
                };
                let dif = self.diffusion.forward(ctx, &x_dif, transitions, adaptive);
                let residual = if self.use_residual {
                    x_dif.sub(&dif.backcast)
                } else {
                    dif.hidden.clone()
                };
                LayerOutput {
                    forecast_dif: dif.forecast,
                    forecast_inh: inh.forecast,
                    residual,
                }
            }
        }
    }
}

impl Module for DecoupledLayer {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = Vec::new();
        if let Some(g) = &self.gate {
            p.extend(g.parameters());
        }
        p.extend(self.diffusion.parameters());
        p.extend(self.inherent.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2stgnn_graph::TrafficNetwork;
    use rand::SeedableRng;

    fn setup(cfg: &D2stgnnConfig) -> (GraphContext, SharedEmbeddings, DecoupledLayer, StdRng) {
        let mut rng = StdRng::seed_from_u64(5);
        let net = TrafficNetwork::random_geometric(cfg.num_nodes, 3, 0.02, &mut rng);
        let ctx = GraphContext::new(&net);
        let emb = SharedEmbeddings::new(cfg.num_nodes, cfg.steps_per_day, cfg.emb_dim, &mut rng);
        let layer = DecoupledLayer::new(cfg, &mut rng);
        (ctx, emb, layer, rng)
    }

    fn run(cfg: &D2stgnnConfig) -> LayerOutput {
        let (ctx, emb, layer, mut rng) = setup(cfg);
        let x = Tensor::constant(Array::randn(
            &[2, cfg.th, cfg.num_nodes, cfg.hidden],
            &mut rng,
        ));
        let tr = Transitions::Static {
            p_f: ctx.p_f().clone(),
            p_b: ctx.p_b().clone(),
        };
        let apt = crate::graphs::adaptive_transition(&emb);
        let tod: Vec<usize> = (0..2 * cfg.th).map(|i| i % 288).collect();
        let dow: Vec<usize> = (0..2 * cfg.th).map(|i| i % 7).collect();
        layer.forward(&ctx, &emb, &x, &tr, Some(&apt), &tod, &dow, false, &mut rng)
    }

    fn small() -> D2stgnnConfig {
        let mut cfg = D2stgnnConfig::small(6);
        cfg.th = 6;
        cfg.tf = 4;
        cfg.kt = 2;
        cfg
    }

    #[test]
    fn shapes_default_order() {
        let cfg = small();
        let out = run(&cfg);
        assert_eq!(out.forecast_dif.shape(), vec![2, 4, 6, 16]);
        assert_eq!(out.forecast_inh.shape(), vec![2, 4, 6, 16]);
        assert_eq!(out.residual.shape(), vec![2, 6, 6, 16]);
    }

    #[test]
    fn shapes_switch_order() {
        let mut cfg = small();
        cfg.order = BlockOrder::InherentFirst;
        let out = run(&cfg);
        assert_eq!(out.forecast_dif.shape(), vec![2, 4, 6, 16]);
        assert_eq!(out.residual.shape(), vec![2, 6, 6, 16]);
    }

    #[test]
    fn every_ablation_variant_runs() {
        for (gate, res) in [(false, true), (true, false), (false, false)] {
            let mut cfg = small();
            cfg.use_gate = gate;
            cfg.use_residual = res;
            let out = run(&cfg);
            assert_eq!(out.residual.shape(), vec![2, 6, 6, 16]);
        }
        let mut cfg = small();
        cfg.use_adaptive = false;
        cfg.use_autoregressive = false;
        run(&cfg);
    }

    #[test]
    fn gate_changes_parameter_count() {
        let cfg = small();
        let (_, _, with_gate, _) = setup(&cfg);
        let mut cfg2 = small();
        cfg2.use_gate = false;
        let (_, _, without_gate, _) = setup(&cfg2);
        assert!(with_gate.num_parameters() > without_gate.num_parameters());
    }

    #[test]
    fn residual_decomposition_subtracts_backcast() {
        // With residuals on, the residual must differ from the input; with
        // residuals off (pure coupling), the residual is the inherent hidden.
        let cfg = small();
        let (ctx, emb, layer, mut rng) = setup(&cfg);
        let x = Tensor::constant(Array::randn(&[1, 6, 6, 16], &mut rng));
        let tr = Transitions::Static {
            p_f: ctx.p_f().clone(),
            p_b: ctx.p_b().clone(),
        };
        let apt = crate::graphs::adaptive_transition(&emb);
        let tod: Vec<usize> = (0..6).collect();
        let dow = vec![0; 6];
        let out = layer.forward(&ctx, &emb, &x, &tr, Some(&apt), &tod, &dow, false, &mut rng);
        // Input = residual + dif backcast + inh backcast by construction:
        // verify via the identity X^{l+1} = X^l - Xb_dif - Xb_inh.
        let sum_check = x.sub(&out.residual); // = Xb_dif + Xb_inh
        assert!(sum_check.value().data().iter().any(|v| v.abs() > 1e-6));
    }

    #[test]
    fn gradients_flow_through_layer() {
        let cfg = small();
        let (ctx, emb, layer, mut rng) = setup(&cfg);
        let x = Tensor::parameter(Array::randn(&[1, 6, 6, 16], &mut rng));
        let tr = Transitions::Static {
            p_f: ctx.p_f().clone(),
            p_b: ctx.p_b().clone(),
        };
        let apt = crate::graphs::adaptive_transition(&emb);
        let tod: Vec<usize> = (0..6).collect();
        let dow = vec![0; 6];
        let out = layer.forward(&ctx, &emb, &x, &tr, Some(&apt), &tod, &dow, true, &mut rng);
        out.forecast_dif
            .sum_all()
            .add(&out.forecast_inh.sum_all())
            .add(&out.residual.sum_all())
            .backward();
        assert!(x.grad().is_some());
        for (i, p) in layer.parameters().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} missing grad");
        }
        // Embeddings receive gradient through gate + adaptive matrix.
        assert!(emb.e_u().grad().is_some());
    }
}
