//! The estimation gate (Eq. 3): a learned scalar in (0,1) per (time step,
//! node) that roughly estimates the proportion of the diffusion signal in
//! the raw input, relieving the first block of each layer from having to
//! identify its share of the signal on its own.

use crate::embeddings::SharedEmbeddings;
use d2stgnn_tensor::nn::{Linear, Module};
use d2stgnn_tensor::Tensor;
use rand::Rng;

/// Estimation gate `Λ_{t,i} = Sigmoid(σ((T^D_t ‖ T^W_t ‖ E^u_i ‖ E^d_i) W₁) W₂)`.
pub struct EstimationGate {
    w1: Linear,
    w2: Linear,
}

impl EstimationGate {
    /// New gate for embeddings of width `emb_dim` with a `hidden`-wide
    /// intermediate layer.
    pub fn new<R: Rng>(emb_dim: usize, hidden: usize, rng: &mut R) -> Self {
        Self {
            w1: Linear::new(4 * emb_dim, hidden, true, rng),
            w2: Linear::new(hidden, 1, true, rng),
        }
    }

    /// Compute the gate `Λ` with shape `[B, T_h, N, 1]`.
    ///
    /// `tod`/`dow` are flat per-input-step slot indices of length `B * T_h`.
    pub fn forward(
        &self,
        emb: &SharedEmbeddings,
        tod: &[usize],
        dow: &[usize],
        b: usize,
        th: usize,
        n: usize,
    ) -> Tensor {
        assert_eq!(tod.len(), b * th, "tod indices must be B*T_h");
        assert_eq!(dow.len(), b * th, "dow indices must be B*T_h");
        let e = emb.dim();
        let t_d = emb
            .tod_rows(tod)
            .reshape(&[b, th, 1, e])
            .broadcast_to(&[b, th, n, e]);
        let t_w = emb
            .dow_rows(dow)
            .reshape(&[b, th, 1, e])
            .broadcast_to(&[b, th, n, e]);
        let e_u = emb
            .e_u()
            .reshape(&[1, 1, n, e])
            .broadcast_to(&[b, th, n, e]);
        let e_d = emb
            .e_d()
            .reshape(&[1, 1, n, e])
            .broadcast_to(&[b, th, n, e]);
        let feats = Tensor::concat(&[&t_d, &t_w, &e_u, &e_d], 3);
        self.w2.forward(&self.w1.forward(&feats).relu()).sigmoid()
    }
}

impl Module for EstimationGate {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.w1.parameters();
        p.extend(self.w2.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SharedEmbeddings, EstimationGate, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let emb = SharedEmbeddings::new(6, 288, 8, &mut rng);
        let gate = EstimationGate::new(8, 16, &mut rng);
        (emb, gate, rng)
    }

    #[test]
    fn output_shape_and_range() {
        let (emb, gate, _) = setup();
        let (b, th, n) = (2, 4, 6);
        let tod: Vec<usize> = (0..b * th).map(|i| i % 288).collect();
        let dow: Vec<usize> = (0..b * th).map(|i| i % 7).collect();
        let lam = gate.forward(&emb, &tod, &dow, b, th, n);
        assert_eq!(lam.shape(), vec![2, 4, 6, 1]);
        for v in lam.value().data() {
            assert!((0.0..=1.0).contains(v), "gate value {v} outside (0,1)");
        }
    }

    #[test]
    fn gate_varies_across_nodes_and_times() {
        let (emb, gate, _) = setup();
        let tod: Vec<usize> = vec![10, 150];
        let dow: Vec<usize> = vec![1, 5];
        let lam = gate.forward(&emb, &tod, &dow, 1, 2, 6).value();
        // Different nodes produce different gate values.
        assert_ne!(lam.at(&[0, 0, 0, 0]), lam.at(&[0, 0, 1, 0]));
        // Different time slots produce different gate values.
        assert_ne!(lam.at(&[0, 0, 0, 0]), lam.at(&[0, 1, 0, 0]));
    }

    #[test]
    fn gradients_reach_embeddings_and_weights() {
        let (emb, gate, _) = setup();
        let tod = vec![0, 1];
        let dow = vec![0, 0];
        let lam = gate.forward(&emb, &tod, &dow, 1, 2, 6);
        lam.sum_all().backward();
        for p in gate.parameters().iter().chain(emb.parameters().iter()) {
            assert!(p.grad().is_some());
        }
        // Only looked-up time rows receive gradient.
        let g = emb.time_of_day.weights().grad().unwrap();
        let row_norm =
            |r: usize| -> f32 { g.data()[r * 8..(r + 1) * 8].iter().map(|v| v.abs()).sum() };
        assert!(row_norm(0) > 0.0 && row_norm(1) > 0.0);
        assert_eq!(row_norm(100), 0.0);
    }

    #[test]
    #[should_panic(expected = "B*T_h")]
    fn wrong_index_length_panics() {
        let (emb, gate, _) = setup();
        gate.forward(&emb, &[0, 1, 2], &[0, 1, 2], 2, 2, 6);
    }
}
