//! Error types for the core crate: configuration validation and checkpoint
//! I/O, plus the crate's single panic funnel for invariant violations.

use std::fmt;

/// A rejected [`crate::D2stgnnConfig`], with a human-readable complaint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl From<String> for ConfigError {
    fn from(msg: String) -> Self {
        ConfigError(msg)
    }
}

impl From<&str> for ConfigError {
    fn from(msg: &str) -> Self {
        ConfigError(msg.to_string())
    }
}

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON.
    Parse(String),
    /// Parameter count or shapes disagree with the target model.
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::Parse(e) => write!(f, "checkpoint parse: {e}"),
            CheckpointError::Mismatch(e) => write!(f, "checkpoint mismatch: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// The crate's single panic funnel for unrecoverable invariant violations.
///
/// Model construction and the forward pass keep their documented
/// panic-on-misuse contract, but every such abort goes through this one
/// function so the `xlint` `no-panic` rule needs exactly one allowlist entry
/// for the whole crate.
#[cold]
#[track_caller]
pub(crate) fn violation(detail: impl fmt::Display) -> ! {
    panic!("{detail}")
}

/// Unwrap a result whose failure is an internal invariant violation.
#[track_caller]
pub(crate) fn require<T, E: fmt::Display>(result: Result<T, E>, context: &str) -> T {
    match result {
        Ok(v) => v,
        Err(e) => violation(format_args!("{context}: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_display() {
        let e = ConfigError::from("heads must divide hidden");
        assert!(e.to_string().contains("invalid config"));
        assert!(e.to_string().contains("heads"));
    }

    #[test]
    #[should_panic(expected = "ctx: boom")]
    fn require_funnels_through_violation() {
        let r: Result<(), &str> = Err("boom");
        require(r, "ctx");
    }
}
