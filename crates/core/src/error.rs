//! Error types for the core crate: configuration validation and checkpoint
//! I/O, plus the crate's single panic funnel for invariant violations.

use std::fmt;

/// A rejected [`crate::D2stgnnConfig`], with a human-readable complaint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl From<String> for ConfigError {
    fn from(msg: String) -> Self {
        ConfigError(msg)
    }
}

impl From<&str> for ConfigError {
    fn from(msg: &str) -> Self {
        ConfigError(msg.to_string())
    }
}

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON.
    Parse(String),
    /// Parameter count or shapes disagree with the target model.
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::Parse(e) => write!(f, "checkpoint parse: {e}"),
            CheckpointError::Mismatch(e) => write!(f, "checkpoint mismatch: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Errors surfaced by [`crate::Trainer::train`]. Training failures are
/// recoverable library conditions, not invariant violations, so they are
/// typed instead of routed through the panic funnel.
#[derive(Debug)]
pub enum TrainError {
    /// A non-finite loss or gradient survived every rollback in the budget.
    Diverged {
        /// Epoch in progress when the final divergence was detected.
        epoch: usize,
        /// Global iteration (batch) counter at detection.
        iteration: usize,
        /// Rollbacks consumed before giving up.
        rollbacks: usize,
    },
    /// The dataset's validation split contains no windows: early stopping
    /// would compare against all-zero metrics and stop at epoch 0.
    EmptyValidation,
    /// Reading or writing a training checkpoint failed.
    Checkpoint(CheckpointError),
    /// A resume checkpoint is unusable for this run (not a v3 full-state
    /// file, or its recorded configuration disagrees with the trainer's).
    ResumeMismatch(String),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Diverged {
                epoch,
                iteration,
                rollbacks,
            } => write!(
                f,
                "training diverged: non-finite loss/gradient at epoch {epoch} iteration \
                 {iteration} after {rollbacks} rollback(s)"
            ),
            TrainError::EmptyValidation => write!(
                f,
                "validation split is empty: early stopping would track all-zero metrics \
                 (use a non-zero validation fraction)"
            ),
            TrainError::Checkpoint(e) => write!(f, "train checkpoint: {e}"),
            TrainError::ResumeMismatch(e) => write!(f, "resume mismatch: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

/// The crate's single panic funnel for unrecoverable invariant violations.
///
/// Model construction and the forward pass keep their documented
/// panic-on-misuse contract, but every such abort goes through this one
/// function so the `xlint` `no-panic` rule needs exactly one allowlist entry
/// for the whole crate.
#[cold]
#[track_caller]
pub(crate) fn violation(detail: impl fmt::Display) -> ! {
    panic!("{detail}")
}

/// Unwrap a result whose failure is an internal invariant violation.
#[track_caller]
pub(crate) fn require<T, E: fmt::Display>(result: Result<T, E>, context: &str) -> T {
    match result {
        Ok(v) => v,
        Err(e) => violation(format_args!("{context}: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_display() {
        let e = ConfigError::from("heads must divide hidden");
        assert!(e.to_string().contains("invalid config"));
        assert!(e.to_string().contains("heads"));
    }

    #[test]
    #[should_panic(expected = "ctx: boom")]
    fn require_funnels_through_violation() {
        let r: Result<(), &str> = Err("boom");
        require(r, "ctx");
    }
}
