//! Forecast branches (Section 5.4): the default sliding auto-regression that
//! rolls hidden states forward one step at a time, and the direct multi-step
//! head used by the *w/o ar* ablation.

use d2stgnn_tensor::nn::{Linear, Module};
use d2stgnn_tensor::Tensor;
use rand::Rng;

/// How a block extrapolates its hidden-state sequence into the future.
pub enum ForecastBranch {
    /// Sliding auto-regression: the next hidden state is a linear function
    /// of the last `q` hidden states; the window then slides over the newly
    /// generated state (the paper's default for both blocks).
    Sliding {
        /// Context window length `q`.
        q: usize,
        /// `[q*d -> d]` step head.
        head: Linear,
    },
    /// Direct multi-step regression from the final hidden state
    /// (*w/o ar* in Table 5).
    Direct {
        /// `[d -> tf*d]` head.
        head: Linear,
        /// Horizon length.
        tf: usize,
        /// Hidden width.
        d: usize,
    },
}

impl ForecastBranch {
    /// Sliding AR branch with context `q` over width-`d` states.
    pub fn sliding<R: Rng>(q: usize, d: usize, rng: &mut R) -> Self {
        assert!(q >= 1, "context must be >= 1");
        ForecastBranch::Sliding {
            q,
            head: Linear::new(q * d, d, true, rng),
        }
    }

    /// Direct multi-step branch.
    pub fn direct<R: Rng>(tf: usize, d: usize, rng: &mut R) -> Self {
        ForecastBranch::Direct {
            head: Linear::new(d, tf * d, true, rng),
            tf,
            d,
        }
    }

    /// Extrapolate `tf` future states from a hidden sequence `[B', T, d]`;
    /// returns `[B', tf, d]`.
    pub fn forward(&self, h: &Tensor, tf: usize) -> Tensor {
        let shape = h.shape();
        assert_eq!(shape.len(), 3, "forecast branch expects [B', T, d]");
        let (bp, t, d) = (shape[0], shape[1], shape[2]);
        match self {
            ForecastBranch::Sliding { q, head } => {
                let q = *q;
                assert!(t >= q, "need at least q={q} states, got {t}");
                assert_eq!(head.in_features(), q * d, "sliding head width mismatch");
                // Window of the last q states, flattened per step.
                let mut window: Vec<Tensor> = (t - q..t)
                    .map(|i| h.slice_axis(1, i, i + 1).reshape(&[bp, d]))
                    .collect();
                let mut outs = Vec::with_capacity(tf);
                for _ in 0..tf {
                    let refs: Vec<&Tensor> = window.iter().collect();
                    let ctx = Tensor::concat(&refs, 1); // [B', q*d]
                    let next = head.forward(&ctx); // [B', d]
                    outs.push(next.clone());
                    window.remove(0);
                    window.push(next);
                }
                let refs: Vec<&Tensor> = outs.iter().collect();
                Tensor::stack(&refs, 1)
            }
            ForecastBranch::Direct {
                head,
                tf: tf_cfg,
                d: d_cfg,
            } => {
                assert_eq!(tf, *tf_cfg, "direct branch built for tf={tf_cfg}, got {tf}");
                assert_eq!(d, *d_cfg, "direct branch width mismatch");
                let last = h.slice_axis(1, t - 1, t).reshape(&[bp, d]);
                head.forward(&last).reshape(&[bp, tf, d])
            }
        }
    }
}

impl Module for ForecastBranch {
    fn parameters(&self) -> Vec<Tensor> {
        match self {
            ForecastBranch::Sliding { head, .. } => head.parameters(),
            ForecastBranch::Direct { head, .. } => head.parameters(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2stgnn_tensor::Array;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sliding_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let br = ForecastBranch::sliding(3, 4, &mut rng);
        let h = Tensor::constant(Array::randn(&[5, 12, 4], &mut rng));
        assert_eq!(br.forward(&h, 12).shape(), vec![5, 12, 4]);
        assert_eq!(br.forward(&h, 1).shape(), vec![5, 1, 4]);
    }

    #[test]
    fn direct_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let br = ForecastBranch::direct(6, 4, &mut rng);
        let h = Tensor::constant(Array::randn(&[5, 12, 4], &mut rng));
        assert_eq!(br.forward(&h, 6).shape(), vec![5, 6, 4]);
    }

    #[test]
    fn sliding_is_autoregressive() {
        // With an identity-ish head, prediction i+1 must depend on prediction i:
        // check that changing only the LAST input state changes all outputs.
        let mut rng = StdRng::seed_from_u64(1);
        let br = ForecastBranch::sliding(2, 3, &mut rng);
        let base = Array::randn(&[1, 5, 3], &mut rng);
        let mut bumped = base.clone();
        for i in 12..15 {
            bumped.data_mut()[i] += 1.0; // last time step
        }
        let y0 = br.forward(&Tensor::constant(base), 4).value();
        let y1 = br.forward(&Tensor::constant(bumped), 4).value();
        for step in 0..4 {
            let diff: f32 = (0..3)
                .map(|i| (y0.at(&[0, step, i]) - y1.at(&[0, step, i])).abs())
                .sum();
            assert!(diff > 1e-7, "step {step} unaffected by last state");
        }
    }

    #[test]
    fn direct_ignores_all_but_last_state() {
        let mut rng = StdRng::seed_from_u64(2);
        let br = ForecastBranch::direct(3, 2, &mut rng);
        let base = Array::randn(&[1, 4, 2], &mut rng);
        let mut bumped = base.clone();
        bumped.data_mut()[0] += 9.0; // first time step only
        let y0 = br.forward(&Tensor::constant(base), 3).value();
        let y1 = br.forward(&Tensor::constant(bumped), 3).value();
        assert_eq!(y0.data(), y1.data());
    }

    #[test]
    fn gradients_flow_through_both() {
        let mut rng = StdRng::seed_from_u64(3);
        for br in [
            ForecastBranch::sliding(2, 3, &mut rng),
            ForecastBranch::direct(4, 3, &mut rng),
        ] {
            let h = Tensor::parameter(Array::randn(&[2, 6, 3], &mut rng));
            br.forward(&h, 4).square().sum_all().backward();
            assert!(h.grad().is_some());
            for p in br.parameters() {
                assert!(p.grad().is_some());
            }
        }
    }
}
