//! Model configuration, including every ablation toggle of Table 5.

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};

/// Which block runs first inside each decoupled layer (the *switch* ablation
/// — the paper argues the blocks are interchangeable, Section 4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockOrder {
    /// Diffusion block first (the paper's default style).
    DiffusionFirst,
    /// Inherent block first (the `switch` ablation).
    InherentFirst,
}

/// Hyper-parameters and architecture toggles for [`crate::D2stgnn`].
///
/// Defaults follow Section 6.1: hidden `d = 32`, embedding size 12, spatial
/// kernel `k_s = 2`, temporal kernel `k_t = 3`, 12-in/12-out windows.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct D2stgnnConfig {
    /// Number of sensors (nodes).
    pub num_nodes: usize,
    /// Input feature channels (1 for speed/flow).
    pub in_channels: usize,
    /// Output channels (1).
    pub out_channels: usize,
    /// Input window length `T_h`.
    pub th: usize,
    /// Forecast horizon `T_f`.
    pub tf: usize,
    /// Hidden width `d`.
    pub hidden: usize,
    /// Node/time embedding width.
    pub emb_dim: usize,
    /// Number of stacked decoupled spatial-temporal layers `L`.
    pub layers: usize,
    /// Spatial kernel size `k_s`.
    pub ks: usize,
    /// Temporal kernel size `k_t`.
    pub kt: usize,
    /// Attention heads in the inherent block.
    pub heads: usize,
    /// Time slots per day (for `T^D`).
    pub steps_per_day: usize,
    /// Dropout probability inside blocks.
    pub dropout: f32,

    // --- ablation toggles (Table 5) ---
    /// Block ordering inside each layer (`switch` when `InherentFirst`).
    pub order: BlockOrder,
    /// Estimation gate (Eq. 3); `false` = *w/o gate*.
    pub use_gate: bool,
    /// Residual decomposition links (Eqs. 1–2); `false` = *w/o res*.
    pub use_residual: bool,
    /// Dynamic graph learning (Eqs. 13–14); `false` = *w/o dg* (static graph,
    /// the D²STGNN† variant of Table 4).
    pub use_dynamic_graph: bool,
    /// Self-adaptive transition matrix (Eq. 7); `false` = *w/o apt*.
    pub use_adaptive: bool,
    /// GRU in the inherent block; `false` = *w/o gru*.
    pub use_gru: bool,
    /// Multi-head self-attention in the inherent block; `false` = *w/o msa*.
    pub use_msa: bool,
    /// Auto-regressive forecast branches; `false` = *w/o ar* (direct
    /// multi-step regression).
    pub use_autoregressive: bool,
}

impl D2stgnnConfig {
    /// Paper defaults for a network of `num_nodes` sensors.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            in_channels: 1,
            out_channels: 1,
            th: 12,
            tf: 12,
            hidden: 32,
            emb_dim: 12,
            layers: 2,
            ks: 2,
            kt: 3,
            heads: 4,
            steps_per_day: 288,
            dropout: 0.1,
            order: BlockOrder::DiffusionFirst,
            use_gate: true,
            use_residual: true,
            use_dynamic_graph: true,
            use_adaptive: true,
            use_gru: true,
            use_msa: true,
            use_autoregressive: true,
        }
    }

    /// A small configuration for tests and smoke runs.
    pub fn small(num_nodes: usize) -> Self {
        let mut cfg = Self::new(num_nodes);
        cfg.hidden = 16;
        cfg.emb_dim = 8;
        cfg.layers = 2;
        cfg.heads = 2;
        cfg.dropout = 0.0;
        cfg
    }

    /// The *w/o decouple* / D²STGNN‡ variant of Table 4: estimation gate and
    /// residual links removed, blocks connected directly.
    pub fn coupled(mut self) -> Self {
        self.use_gate = false;
        self.use_residual = false;
        self
    }

    /// The D²STGNN† variant of Table 4: pre-defined static graph only.
    pub fn static_graph(mut self) -> Self {
        self.use_dynamic_graph = false;
        self
    }

    /// Validate invariants; returns a human-readable complaint on failure.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_nodes == 0 {
            return Err("num_nodes must be positive".into());
        }
        if self.hidden == 0 || self.emb_dim == 0 {
            return Err("hidden and emb_dim must be positive".into());
        }
        if self.heads == 0 || !self.hidden.is_multiple_of(self.heads) {
            return Err(format!(
                "heads ({}) must divide hidden ({})",
                self.heads, self.hidden
            )
            .into());
        }
        if self.ks == 0 || self.kt == 0 {
            return Err("ks and kt must be >= 1".into());
        }
        if self.kt > self.th {
            return Err(format!("kt ({}) cannot exceed th ({})", self.kt, self.th).into());
        }
        if self.layers == 0 {
            return Err("need at least one layer".into());
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err("dropout must be in [0, 1)".into());
        }
        Ok(())
    }

    /// Human-readable tag describing the enabled ablations (for tables).
    pub fn variant_tag(&self) -> String {
        let mut off = Vec::new();
        if self.order == BlockOrder::InherentFirst {
            off.push("switch");
        }
        if !self.use_gate && !self.use_residual {
            off.push("w/o decouple");
        } else {
            if !self.use_gate {
                off.push("w/o gate");
            }
            if !self.use_residual {
                off.push("w/o res");
            }
        }
        if !self.use_dynamic_graph {
            off.push("w/o dg");
        }
        if !self.use_adaptive {
            off.push("w/o apt");
        }
        if !self.use_gru {
            off.push("w/o gru");
        }
        if !self.use_msa {
            off.push("w/o msa");
        }
        if !self.use_autoregressive {
            off.push("w/o ar");
        }
        if off.is_empty() {
            "full".to_string()
        } else {
            off.join(", ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_section_6_1() {
        let cfg = D2stgnnConfig::new(207);
        assert_eq!(cfg.hidden, 32);
        assert_eq!(cfg.emb_dim, 12);
        assert_eq!(cfg.ks, 2);
        assert_eq!(cfg.kt, 3);
        assert_eq!(cfg.th, 12);
        assert_eq!(cfg.tf, 12);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = D2stgnnConfig::new(10);
        cfg.heads = 5;
        assert!(cfg.validate().is_err());
        let mut cfg = D2stgnnConfig::new(10);
        cfg.kt = 20;
        assert!(cfg.validate().is_err());
        let mut cfg = D2stgnnConfig::new(10);
        cfg.layers = 0;
        assert!(cfg.validate().is_err());
        let cfg = D2stgnnConfig::new(0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn variant_builders() {
        let c = D2stgnnConfig::new(10).coupled();
        assert!(!c.use_gate && !c.use_residual);
        assert_eq!(c.variant_tag(), "w/o decouple");
        let s = D2stgnnConfig::new(10).static_graph();
        assert!(!s.use_dynamic_graph);
        assert_eq!(s.variant_tag(), "w/o dg");
        assert_eq!(D2stgnnConfig::new(10).variant_tag(), "full");
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = D2stgnnConfig::small(10);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: D2stgnnConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.hidden, cfg.hidden);
        assert_eq!(back.order, cfg.order);
    }
}
