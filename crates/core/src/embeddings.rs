//! The shared learnable embeddings of Section 4.2: source/target node
//! embeddings `E^u`/`E^d` and time-of-day / day-of-week slot embeddings
//! `T^D`/`T^W`. One instance is shared by the estimation gate, the
//! self-adaptive transition matrix (Eq. 7), and the dynamic graph learner
//! (Eq. 13), exactly as in the paper.

use d2stgnn_tensor::nn::{Embedding, Module};
use d2stgnn_tensor::Tensor;
use rand::Rng;

/// Shared embedding tables.
pub struct SharedEmbeddings {
    /// Source node embedding `E^u` (message-passing out).
    pub node_source: Embedding,
    /// Target node embedding `E^d` (aggregation in).
    pub node_target: Embedding,
    /// Time-of-day slots `T^D` (`steps_per_day` rows).
    pub time_of_day: Embedding,
    /// Day-of-week slots `T^W` (7 rows).
    pub day_of_week: Embedding,
}

impl SharedEmbeddings {
    /// Randomly initialized tables for `n` nodes with `emb_dim`-wide vectors.
    pub fn new<R: Rng>(n: usize, steps_per_day: usize, emb_dim: usize, rng: &mut R) -> Self {
        Self {
            node_source: Embedding::new(n, emb_dim, rng),
            node_target: Embedding::new(n, emb_dim, rng),
            time_of_day: Embedding::new(steps_per_day, emb_dim, rng),
            day_of_week: Embedding::new(7, emb_dim, rng),
        }
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.node_source.dim()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_source.count()
    }

    /// Full `E^u` table `[N, emb]`.
    pub fn e_u(&self) -> &Tensor {
        self.node_source.weights()
    }

    /// Full `E^d` table `[N, emb]`.
    pub fn e_d(&self) -> &Tensor {
        self.node_target.weights()
    }

    /// Lookup `T^D` rows for a flat list of time-of-day indices.
    pub fn tod_rows(&self, indices: &[usize]) -> Tensor {
        self.time_of_day.lookup(indices)
    }

    /// Lookup `T^W` rows for a flat list of day-of-week indices.
    pub fn dow_rows(&self, indices: &[usize]) -> Tensor {
        self.day_of_week.lookup(indices)
    }
}

impl Module for SharedEmbeddings {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.node_source.parameters();
        p.extend(self.node_target.parameters());
        p.extend(self.time_of_day.parameters());
        p.extend(self.day_of_week.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = SharedEmbeddings::new(10, 288, 12, &mut rng);
        assert_eq!(e.dim(), 12);
        assert_eq!(e.num_nodes(), 10);
        assert_eq!(e.e_u().shape(), vec![10, 12]);
        assert_eq!(e.tod_rows(&[0, 287]).shape(), vec![2, 12]);
        assert_eq!(e.dow_rows(&[6]).shape(), vec![1, 12]);
        assert_eq!(e.parameters().len(), 4);
    }

    #[test]
    fn tables_are_trainable_and_distinct() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = SharedEmbeddings::new(5, 288, 8, &mut rng);
        assert!(e.e_u().requires_grad());
        assert_ne!(e.e_u().value().data(), e.e_d().value().data());
    }
}
