//! Graph machinery inside the model: static transition constants, the
//! self-adaptive transition matrix (Eq. 7), and the dynamic graph learner
//! (Eqs. 13–14).

use crate::embeddings::SharedEmbeddings;
use d2stgnn_graph::{transition, CsrMatrix, SparseNetwork, TrafficNetwork};
use d2stgnn_tensor::nn::{Linear, Mlp, Module};
use d2stgnn_tensor::{Array, Tensor};
use rand::Rng;
use std::sync::OnceLock;

/// The transition matrices handed to the diffusion block for one forward
/// pass. Static matrices are `[N, N]` (dense tensors or CSR, chosen by the
/// sparsity dispatch rule); dynamic ones carry a batch axis `[B, N, N]`
/// (one graph per window, static *within* the window as the paper assumes)
/// and are always dense — they are batch-varying products of a softmax
/// attention mask, dense by construction, and gradients must flow through
/// them.
pub enum Transitions {
    /// Road-network transitions shared by every sample.
    Static {
        /// Forward transition `P_f`.
        p_f: Tensor,
        /// Backward transition `P_b`.
        p_b: Tensor,
    },
    /// Road-network transitions shared by every sample, stored sparsely:
    /// the city-scale hot path (constant matrices, no gradients needed).
    Sparse {
        /// Forward transition `P_f` as CSR.
        p_f: CsrMatrix,
        /// Backward transition `P_b` as CSR.
        p_b: CsrMatrix,
    },
    /// Learned per-window transitions `P^{dy}` (Eq. 14).
    Dynamic {
        /// Forward dynamic transition `[B, N, N]`.
        p_f: Tensor,
        /// Backward dynamic transition `[B, N, N]`.
        p_b: Tensor,
    },
}

/// Dense precomputed constants (paper-scale graphs).
struct DenseContext {
    /// `P_f` as a constant tensor `[N, N]`.
    p_f: Tensor,
    /// `P_b` as a constant tensor `[N, N]`.
    p_b: Tensor,
    /// `(1 - I)` diagonal mask `[N, N]`.
    diag_mask: Tensor,
}

/// `D2_SPARSE_THRESHOLD`: minimum transition-matrix sparsity (fraction of
/// zero entries) at which [`GraphContext::new`] switches the static
/// diffusion path to CSR. Read once per process like the other `D2_*`
/// switches; values above 1.0 force the dense path, 0 forces sparse.
fn sparse_threshold() -> f32 {
    static THRESHOLD: OnceLock<f32> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("D2_SPARSE_THRESHOLD")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.9)
    })
}

/// Precomputed constants derived from the road network.
///
/// Holds the static transition matrices in one or both representations:
/// dense tensors (always present for paper-scale [`TrafficNetwork`]s — the
/// dynamic graph learner and the adaptive matrix need them) and CSR copies
/// of the *same values* when the matrices are sparse enough that the
/// diffusion block should take the pooled spmm path. City-scale contexts
/// built with [`GraphContext::from_sparse`] are sparse-only and never
/// materialize an `[N, N]` tensor.
pub struct GraphContext {
    dense: Option<DenseContext>,
    sparse: Option<(CsrMatrix, CsrMatrix)>,
    n: usize,
}

impl GraphContext {
    /// Build from a traffic network. The CSR representation is attached
    /// automatically when both transition matrices' sparsity reaches the
    /// `D2_SPARSE_THRESHOLD` env var (default 0.9).
    pub fn new(network: &TrafficNetwork) -> Self {
        Self::with_threshold(network, sparse_threshold())
    }

    /// [`GraphContext::new`] with an explicit sparsity threshold (tests and
    /// benches force either path with 0.0 / above-1.0).
    pub fn with_threshold(network: &TrafficNetwork, threshold: f32) -> Self {
        let adj = network.adjacency();
        let n = network.num_nodes();
        let mut mask = Array::ones(&[n, n]);
        for i in 0..n {
            mask.data_mut()[i * n + i] = 0.0;
        }
        let p_f = transition::forward_transition(&adj);
        let p_b = transition::backward_transition(&adj);
        // CSR copies hold the *exact same values* as the dense tensors, so
        // either path produces bit-identical diffusion results; see
        // `d2stgnn_tensor::sparse` for the zero-skip argument.
        let c_f = crate::error::require(
            CsrMatrix::from_dense(&p_f, 0.0),
            "row-normalized transitions are finite",
        );
        let c_b = crate::error::require(
            CsrMatrix::from_dense(&p_b, 0.0),
            "row-normalized transitions are finite",
        );
        let sparse =
            (c_f.sparsity() >= threshold && c_b.sparsity() >= threshold).then_some((c_f, c_b));
        Self {
            dense: Some(DenseContext {
                p_f: Tensor::constant(p_f),
                p_b: Tensor::constant(p_b),
                diag_mask: Tensor::constant(mask),
            }),
            sparse,
            n,
        }
    }

    /// Build a sparse-only context from a city-scale network: transitions
    /// are row-normalized in CSR form and no dense `[N, N]` tensor is ever
    /// materialized (at 100k nodes that would be 40 GB). Model features
    /// that need dense matrices (dynamic graph learner, adaptive matrix)
    /// are unavailable with such a context.
    pub fn from_sparse(network: &SparseNetwork) -> Self {
        Self {
            dense: None,
            sparse: Some((network.forward_transition(), network.backward_transition())),
            n: network.num_nodes(),
        }
    }

    /// Dense `P_f` `[N, N]`.
    ///
    /// # Panics
    /// On a sparse-only context (programming error: callers needing dense
    /// tensors must not be wired to city-scale contexts).
    pub fn p_f(&self) -> &Tensor {
        &self.dense().p_f
    }

    /// Dense `P_b` `[N, N]`. Panics on a sparse-only context like
    /// [`GraphContext::p_f`].
    pub fn p_b(&self) -> &Tensor {
        &self.dense().p_b
    }

    /// `(1 - I)` diagonal mask `[N, N]`. Panics on a sparse-only context
    /// like [`GraphContext::p_f`].
    pub fn diag_mask(&self) -> &Tensor {
        &self.dense().diag_mask
    }

    fn dense(&self) -> &DenseContext {
        match &self.dense {
            Some(d) => d,
            None => crate::error::violation(
                "dense transition tensors are unavailable in a sparse-only GraphContext",
            ),
        }
    }

    /// The CSR transitions `(P_f, P_b)` when the sparse diffusion path is
    /// active (city-scale context, or dense matrices past the sparsity
    /// threshold).
    pub fn sparse_transitions(&self) -> Option<(&CsrMatrix, &CsrMatrix)> {
        self.sparse.as_ref().map(|(f, b)| (f, b))
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }
}

/// Self-adaptive transition matrix (Eq. 7):
/// `P_apt = Softmax(σ(E^d (E^u)ᵀ))`, row-normalized over the last axis.
/// Recomputed every forward pass so gradients reach the node embeddings.
pub fn adaptive_transition(emb: &SharedEmbeddings) -> Tensor {
    emb.e_d().matmul(&emb.e_u().transpose()).relu().softmax(1)
}

/// Dynamic graph learner (Section 5.3).
///
/// Builds per-window dynamic feature matrices `DF^u_t`/`DF^d_t` (Eq. 13) from
/// the window's latent signal, the time embeddings of its last step, and the
/// static node embeddings, then masks the static transitions with a
/// self-attention score matrix (Eq. 14).
pub struct DynamicGraphLearner {
    feature_fc: Mlp,
    wq: Linear,
    wk: Linear,
    emb_dim: usize,
    hidden: usize,
}

impl DynamicGraphLearner {
    /// `th * d_in` is the flattened per-node window width fed to `FC(·)`.
    pub fn new<R: Rng>(th: usize, d_in: usize, emb_dim: usize, hidden: usize, rng: &mut R) -> Self {
        Self {
            feature_fc: Mlp::new(th * d_in, hidden, emb_dim, rng),
            wq: Linear::new(4 * emb_dim, hidden, false, rng),
            wk: Linear::new(4 * emb_dim, hidden, false, rng),
            emb_dim,
            hidden,
        }
    }

    /// Compute `(P^{dy}_f, P^{dy}_b)`, each `[B, N, N]`.
    ///
    /// * `x0` — the window's latent signal `[B, T_h, N, d]`.
    /// * `tod_last`/`dow_last` — the time slots of each window's last input
    ///   step (the paper treats `P^{dy}` as constant within the window).
    pub fn forward(
        &self,
        ctx: &GraphContext,
        emb: &SharedEmbeddings,
        x0: &Tensor,
        tod_last: &[usize],
        dow_last: &[usize],
    ) -> (Tensor, Tensor) {
        let shape = x0.shape();
        let (b, th, n, d) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(n, ctx.num_nodes(), "node count mismatch");
        assert_eq!(tod_last.len(), b, "need one tod per window");
        assert_eq!(dow_last.len(), b, "need one dow per window");
        let e = self.emb_dim;

        // FC(‖_c X_c): per-node flattened history -> [B, N, emb].
        let hist = x0.permute(&[0, 2, 1, 3]).reshape(&[b, n, th * d]);
        let feat = self.feature_fc.forward(&hist);

        let t_d = emb
            .tod_rows(tod_last)
            .reshape(&[b, 1, e])
            .broadcast_to(&[b, n, e]);
        let t_w = emb
            .dow_rows(dow_last)
            .reshape(&[b, 1, e])
            .broadcast_to(&[b, n, e]);
        let e_u = emb.e_u().reshape(&[1, n, e]).broadcast_to(&[b, n, e]);
        let e_d = emb.e_d().reshape(&[1, n, e]).broadcast_to(&[b, n, e]);

        let df_u = Tensor::concat(&[&feat, &t_d, &t_w, &e_u], 2); // [B, N, 4e]
        let df_d = Tensor::concat(&[&feat, &t_d, &t_w, &e_d], 2);

        let scale = 1.0 / (self.hidden as f32).sqrt();
        let mask_from = |df: &Tensor| -> Tensor {
            let q = self.wq.forward(df); // [B, N, h]
            let k = self.wk.forward(df);
            q.matmul(&k.transpose()).scale(scale).softmax(2)
        };
        let p_f_dy = ctx
            .p_f()
            .reshape(&[1, n, n])
            .broadcast_to(&[b, n, n])
            .mul(&mask_from(&df_u));
        let p_b_dy = ctx
            .p_b()
            .reshape(&[1, n, n])
            .broadcast_to(&[b, n, n])
            .mul(&mask_from(&df_d));
        (p_f_dy, p_b_dy)
    }
}

impl Module for DynamicGraphLearner {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.feature_fc.parameters();
        p.extend(self.wq.parameters());
        p.extend(self.wk.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (GraphContext, SharedEmbeddings, StdRng) {
        let mut rng = StdRng::seed_from_u64(7);
        let net = TrafficNetwork::random_geometric(8, 3, 0.05, &mut rng);
        let ctx = GraphContext::new(&net);
        let emb = SharedEmbeddings::new(8, 288, 6, &mut rng);
        (ctx, emb, rng)
    }

    #[test]
    fn context_matrices_are_stochastic_and_masked() {
        let (ctx, _, _) = setup();
        assert!(d2stgnn_graph::transition::is_row_stochastic(
            &ctx.p_f().value(),
            1e-5
        ));
        assert!(d2stgnn_graph::transition::is_row_stochastic(
            &ctx.p_b().value(),
            1e-5
        ));
        let m = ctx.diag_mask().value();
        for i in 0..8 {
            assert_eq!(m.at(&[i, i]), 0.0);
            if i > 0 {
                assert_eq!(m.at(&[i, i - 1]), 1.0);
            }
        }
    }

    #[test]
    fn adaptive_transition_is_row_stochastic_and_differentiable() {
        let (_, emb, _) = setup();
        let p = adaptive_transition(&emb);
        assert_eq!(p.shape(), vec![8, 8]);
        assert!(d2stgnn_graph::transition::is_row_stochastic(
            &p.value(),
            1e-4
        ));
        p.sum_all().backward();
        assert!(emb.e_u().grad().is_some());
        assert!(emb.e_d().grad().is_some());
    }

    #[test]
    fn dynamic_graph_shapes_and_support() {
        let (ctx, emb, mut rng) = setup();
        let dg = DynamicGraphLearner::new(4, 5, 6, 16, &mut rng);
        let x0 = Tensor::constant(Array::randn(&[2, 4, 8, 5], &mut rng));
        let (pf, pb) = dg.forward(&ctx, &emb, &x0, &[10, 20], &[0, 3]);
        assert_eq!(pf.shape(), vec![2, 8, 8]);
        assert_eq!(pb.shape(), vec![2, 8, 8]);
        // The dynamic graph only reweights existing edges: zero static weight
        // stays zero.
        let stat = ctx.p_f().value();
        let dyn0 = pf.value();
        for i in 0..8 {
            for j in 0..8 {
                if stat.at(&[i, j]) == 0.0 {
                    assert_eq!(dyn0.at(&[0, i, j]), 0.0, "edge ({i},{j}) appeared");
                }
            }
        }
    }

    #[test]
    fn dynamic_graph_depends_on_signal() {
        let (ctx, emb, mut rng) = setup();
        let dg = DynamicGraphLearner::new(4, 5, 6, 16, &mut rng);
        let x0 = Array::randn(&[1, 4, 8, 5], &mut rng);
        let mut x1 = x0.clone();
        for v in x1.data_mut().iter_mut().take(40) {
            *v += 3.0;
        }
        let (pf0, _) = dg.forward(&ctx, &emb, &Tensor::constant(x0), &[0], &[0]);
        let (pf1, _) = dg.forward(&ctx, &emb, &Tensor::constant(x1), &[0], &[0]);
        assert_ne!(pf0.value().data(), pf1.value().data());
    }

    #[test]
    fn sparsity_threshold_selects_representation() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = TrafficNetwork::random_geometric(8, 3, 0.05, &mut rng);
        // Above 1.0: dense-only, the sparse path can never activate.
        let dense_only = GraphContext::with_threshold(&net, 2.0);
        assert!(dense_only.sparse_transitions().is_none());
        // At 0.0: the CSR copies exist and hold the dense values bit-for-bit.
        let both = GraphContext::with_threshold(&net, 0.0);
        let (c_f, c_b) = both.sparse_transitions().expect("sparse copies");
        assert_eq!(c_f.to_dense().data(), both.p_f().value().data());
        assert_eq!(c_b.to_dense().data(), both.p_b().value().data());
    }

    #[test]
    fn sparse_only_context_has_transitions_but_no_dense() {
        let mut rng = StdRng::seed_from_u64(8);
        let city = d2stgnn_graph::SparseNetwork::random_city(300, 4, 0.05, &mut rng);
        let ctx = GraphContext::from_sparse(&city);
        assert_eq!(ctx.num_nodes(), 300);
        let (c_f, c_b) = ctx.sparse_transitions().expect("city context is sparse");
        assert!(d2stgnn_graph::transition::is_row_stochastic(
            &c_f.to_dense(),
            1e-5
        ));
        assert_eq!(c_b.shape(), (300, 300));
    }

    #[test]
    #[should_panic(expected = "sparse-only GraphContext")]
    fn sparse_only_context_rejects_dense_accessors() {
        let mut rng = StdRng::seed_from_u64(9);
        let city = d2stgnn_graph::SparseNetwork::random_city(20, 3, 0.05, &mut rng);
        let ctx = GraphContext::from_sparse(&city);
        let _ = ctx.p_f();
    }

    #[test]
    fn dynamic_graph_gradients_flow() {
        let (ctx, emb, mut rng) = setup();
        let dg = DynamicGraphLearner::new(4, 5, 6, 16, &mut rng);
        let x0 = Tensor::parameter(Array::randn(&[2, 4, 8, 5], &mut rng));
        let (pf, pb) = dg.forward(&ctx, &emb, &x0, &[0, 1], &[0, 1]);
        pf.add(&pb).sum_all().backward();
        assert!(x0.grad().is_some());
        for p in dg.parameters() {
            assert!(p.grad().is_some());
        }
    }
}
