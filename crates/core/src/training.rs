//! Training loop (Section 5.4): Adam on masked MAE with curriculum learning
//! (the supervised horizon grows during training) and early stopping on
//! validation MAE, as in the paper's implementation.
//!
//! The loop is fault tolerant: it can persist a full-state checkpoint
//! ([`crate::checkpoint::TrainState`], format v3) at epoch boundaries and at
//! a configurable mid-epoch cadence via crash-safe atomic writes, resume a
//! killed run bit-identically ([`TrainConfig::resume_from`]), and recover
//! from divergence (non-finite loss or gradient norm) by rolling back to the
//! last good state with a halved learning rate, up to
//! [`TrainConfig::divergence_retries`] times before reporting
//! [`TrainError::Diverged`].

use crate::checkpoint::{self, TrainState};
use crate::error::TrainError;
use crate::traits::TrafficModel;
use d2stgnn_data::{metrics, Metrics, Split, WindowedDataset};
use d2stgnn_tensor::losses::masked_mae_loss;
use d2stgnn_tensor::optim::{clip_grad_norm, Adam, Optimizer};
use d2stgnn_tensor::{Array, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;

/// Trainer configuration. Defaults mirror Section 6.1 (Adam, lr 1e-3,
/// batch 32, early stopping) at CPU-friendly epoch counts.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Adam learning rate.
    pub lr: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Maximum epochs.
    pub max_epochs: usize,
    /// Early-stopping patience (epochs without val improvement).
    pub patience: usize,
    /// Global gradient-norm clip.
    pub clip_norm: f32,
    /// Curriculum learning (`w/o cl` disables): the supervised horizon starts
    /// at 1 and increases by one every `cl_step` iterations.
    pub curriculum: bool,
    /// Iterations per curriculum increment.
    pub cl_step: usize,
    /// Multiply the learning rate by this factor every `lr_decay_every`
    /// epochs (1.0 disables; the common traffic-forecasting recipe decays
    /// by 0.5 a few times over training).
    pub lr_decay: f32,
    /// Epochs between learning-rate decays.
    pub lr_decay_every: usize,
    /// Null value masked out of the loss and metrics (0 = failed sensor).
    pub null_val: f32,
    /// RNG seed for shuffling and dropout.
    pub seed: u64,
    /// Print per-epoch progress to stderr.
    pub verbose: bool,
    /// Write a full-state checkpoint (format v3) to this path, crash-safely,
    /// at every epoch boundary and every
    /// [`TrainConfig::checkpoint_every_batches`] batches. `None` disables
    /// persistence (divergence rollback still works from the in-memory
    /// restore point).
    pub checkpoint_path: Option<String>,
    /// Mid-epoch checkpoint cadence in batches (0 = epoch boundaries only).
    /// Also how often the in-memory divergence restore point is refreshed.
    pub checkpoint_every_batches: usize,
    /// Resume from this v3 full-state checkpoint before training: the run
    /// continues exactly where it stopped (same shuffle order, dropout
    /// stream, optimizer moments, curriculum level, and early-stopping
    /// bookkeeping), producing bit-identical final parameters.
    pub resume_from: Option<String>,
    /// Divergence rollbacks allowed before the run fails with
    /// [`TrainError::Diverged`]. Each rollback restores the last good state
    /// and halves the learning rate.
    pub divergence_retries: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            batch_size: 32,
            max_epochs: 30,
            patience: 5,
            clip_norm: 5.0,
            curriculum: true,
            cl_step: 30,
            lr_decay: 1.0,
            lr_decay_every: 10,
            null_val: 0.0,
            seed: 7,
            verbose: false,
            checkpoint_path: None,
            checkpoint_every_batches: 0,
            resume_from: None,
            divergence_retries: 3,
        }
    }
}

impl TrainConfig {
    /// A very short schedule for smoke tests.
    pub fn fast() -> Self {
        Self {
            max_epochs: 3,
            patience: 3,
            cl_step: 10,
            ..Self::default()
        }
    }
}

/// Statistics of one training epoch. After a mid-epoch resume, `seconds`
/// covers only the portion of the epoch run by the resuming process.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss (real-scale masked MAE over supervised horizons).
    pub train_loss: f32,
    /// Validation MAE over all horizons.
    pub val_mae: f32,
    /// Wall-clock seconds for the epoch's training phase.
    pub seconds: f64,
}

/// Result of a training run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainReport {
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
    /// Best validation MAE seen.
    pub best_val_mae: f32,
    /// Epoch index of the best validation MAE.
    pub best_epoch: usize,
    /// Mean training seconds per epoch (Figure 6's quantity).
    pub avg_epoch_seconds: f64,
    /// Divergence rollbacks consumed over the whole run.
    pub rollbacks: usize,
    /// Learning rate in effect when training finished (after schedules and
    /// divergence halving).
    pub final_lr: f32,
}

/// Per-split evaluation output.
#[derive(Clone, Debug)]
pub struct EvalResult {
    /// Stacked de-normalized predictions `[S, T_f, N]`.
    pub pred: Array,
    /// Stacked raw targets `[S, T_f, N]`.
    pub target: Array,
    /// Metrics over all horizons jointly.
    pub overall: Metrics,
    /// Metrics at the paper's reporting horizons (3, 6, 12 when available).
    pub horizons: Vec<(usize, Metrics)>,
}

/// Mutable loop state, grouped so the checkpoint capture/restore paths and
/// the divergence rollback handle every field uniformly.
struct LoopVars {
    epoch: usize,
    batch_cursor: usize,
    epoch_order: Vec<usize>,
    iteration: usize,
    loss_sum: f64,
    loss_count: usize,
    max_level: usize,
    since_best: usize,
    best_val_mae: Option<f32>,
    best_epoch: usize,
    best_params: Option<Vec<Array>>,
    epochs: Vec<EpochStats>,
    rollbacks: usize,
}

/// In-memory rollback target: parameter values plus the matching
/// [`TrainState`], captured at the same points a checkpoint would be written.
struct Restorepoint {
    params: Vec<Array>,
    state: TrainState,
}

/// Orchestrates optimization, curriculum, early stopping, evaluation, and
/// fault tolerance (checkpoint/resume/rollback).
pub struct Trainer {
    cfg: TrainConfig,
}

impl Trainer {
    /// New trainer.
    pub fn new(cfg: TrainConfig) -> Self {
        Self { cfg }
    }

    /// Trainer configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Train `model` on the dataset's train split, early-stopping on the
    /// validation split, restoring the best parameters before returning.
    ///
    /// # Errors
    /// * [`TrainError::EmptyValidation`] if the validation split has no
    ///   windows (early stopping would track all-zero metrics and freeze the
    ///   epoch-0 parameters as "best").
    /// * [`TrainError::Diverged`] if a non-finite loss or gradient norm
    ///   survives every rollback in [`TrainConfig::divergence_retries`].
    /// * [`TrainError::Checkpoint`] / [`TrainError::ResumeMismatch`] for
    ///   unreadable, corrupt, or incompatible checkpoint files — including
    ///   resuming under `D2_FAST_MATH=1`, whose FMA kernels break the
    ///   bit-exact replay the checkpoint layer promises.
    pub fn train<M: TrafficModel + ?Sized>(
        &self,
        model: &M,
        data: &WindowedDataset,
    ) -> Result<TrainReport, TrainError> {
        if data.is_empty(Split::Val) {
            return Err(TrainError::EmptyValidation);
        }
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut opt = Adam::new(model.parameters(), self.cfg.lr);
        let params = model.parameters();
        let scaler = *data.scaler();
        let tf = data.tf();

        let mut vars = LoopVars {
            epoch: 0,
            batch_cursor: 0,
            epoch_order: Vec::new(),
            iteration: 0,
            loss_sum: 0.0,
            loss_count: 0,
            max_level: if self.cfg.curriculum { 1 } else { tf },
            since_best: 0,
            best_val_mae: None,
            best_epoch: 0,
            best_params: None,
            epochs: Vec::new(),
            rollbacks: 0,
        };

        if d2stgnn_tensor::simd::fast_math() {
            // Surfaced once per training run: fast-math kernels round
            // differently, so losses/metrics are not comparable bit-for-bit
            // with default runs even though fresh training is allowed.
            d2stgnn_obsv::event!("d2stgnn_core_train_fast_math", active = 1);
        }
        if let Some(path) = &self.cfg.resume_from {
            // Resume replays optimizer state on the bit-exact promise from
            // the checkpoint layer; D2_FAST_MATH's FMA kernels break it, so
            // refuse up front instead of diverging silently mid-epoch.
            d2stgnn_tensor::simd::require_bit_exact("training resume")
                .map_err(|e| TrainError::ResumeMismatch(e.to_string()))?;
            let ckpt = checkpoint::read(Path::new(path))?;
            let state = ckpt.train.as_ref().ok_or_else(|| {
                TrainError::ResumeMismatch(format!(
                    "{path} is a model-only (v{}) checkpoint without training state",
                    ckpt.version
                ))
            })?;
            self.check_resume_config(&state.config)?;
            checkpoint::restore(model, &ckpt)?;
            apply_state(state, &mut vars, &mut opt, &mut rng)?;
            d2stgnn_obsv::counter_add!("d2stgnn_core_train_resume_total", 1);
            d2stgnn_obsv::event!(
                "d2stgnn_core_train_resume",
                epoch = vars.epoch,
                iteration = vars.iteration,
                batch_cursor = vars.batch_cursor
            );
            if self.cfg.verbose {
                d2stgnn_obsv::console_line(&format!(
                    "[{}] resumed from {path}: epoch {} batch {} iteration {}",
                    model.name(),
                    vars.epoch,
                    vars.batch_cursor,
                    vars.iteration
                ));
            }
        }

        let mut last_good = self.restorepoint(&params, &vars, &opt, &rng);

        'training: while vars.epoch < self.cfg.max_epochs {
            let epoch = vars.epoch;
            if vars.epoch_order.is_empty() && vars.batch_cursor == 0 {
                // Fresh epoch (not a mid-epoch resume): apply the lr
                // schedule, then draw the shuffled window order.
                if self.cfg.lr_decay != 1.0
                    && epoch > 0
                    && self.cfg.lr_decay_every > 0
                    && epoch.is_multiple_of(self.cfg.lr_decay_every)
                {
                    opt.set_learning_rate(opt.learning_rate() * self.cfg.lr_decay);
                }
                vars.epoch_order = data
                    .epoch_batches(Split::Train, self.cfg.batch_size, true, &mut rng)
                    .into_iter()
                    .flatten()
                    .collect();
                vars.loss_sum = 0.0;
                vars.loss_count = 0;
            }
            let mut epoch_span = d2stgnn_obsv::span!("d2stgnn_core_train_epoch", epoch = epoch);
            d2stgnn_obsv::record!(epoch_span, lr = f64::from(opt.learning_rate()));
            d2stgnn_obsv::gauge_set!("d2stgnn_core_train_lr", f64::from(opt.learning_rate()));
            let start = Instant::now();
            let bs = self.cfg.batch_size.max(1);
            let num_batches = vars.epoch_order.len().div_ceil(bs);
            while vars.batch_cursor < num_batches {
                let mut batch_span = d2stgnn_obsv::span!("d2stgnn_core_train_batch");
                let lo = vars.batch_cursor * bs;
                let hi = (lo + bs).min(vars.epoch_order.len());
                let idx: Vec<usize> = vars.epoch_order[lo..hi].to_vec();
                let batch = data.batch(Split::Train, &idx);
                // Curriculum: supervise horizons 1..=level.
                let level = if self.cfg.curriculum {
                    (1 + vars.iteration / self.cfg.cl_step.max(1)).min(tf)
                } else {
                    tf
                };
                vars.max_level = vars.max_level.max(level);
                let pred_norm = model.forward(&batch, true, &mut rng);
                let pred = pred_norm.scale(scaler.std()).add_scalar(scaler.mean());
                let target = Tensor::constant(batch.y.clone());
                let (pred_sup, target_sup) = if level < tf {
                    (pred.slice_axis(1, 0, level), target.slice_axis(1, 0, level))
                } else {
                    (pred, target)
                };
                let loss = masked_mae_loss(&pred_sup, &target_sup, self.cfg.null_val);
                let loss_val = loss.item();
                let mut grad_norm = f32::NAN;
                let mut diverged = !loss_val.is_finite();
                if !diverged {
                    loss.backward();
                    grad_norm = clip_grad_norm(&params, self.cfg.clip_norm);
                    // A non-finite norm means clipping was a no-op and the
                    // gradients are poisoned; do not let Adam consume them.
                    diverged = !grad_norm.is_finite();
                }
                if diverged {
                    for p in &params {
                        p.zero_grad();
                    }
                    d2stgnn_obsv::counter_add!("d2stgnn_core_train_divergence_total", 1);
                    d2stgnn_obsv::event!(
                        "d2stgnn_core_train_divergence",
                        epoch = epoch,
                        iteration = vars.iteration,
                        loss = f64::from(loss_val),
                        grad_norm = f64::from(grad_norm)
                    );
                    if vars.rollbacks >= self.cfg.divergence_retries {
                        return Err(TrainError::Diverged {
                            epoch,
                            iteration: vars.iteration,
                            rollbacks: vars.rollbacks,
                        });
                    }
                    let consumed = vars.rollbacks + 1;
                    // Halve the restore point's lr so repeated rollbacks
                    // keep shrinking it.
                    last_good.state.lr *= 0.5;
                    for (p, v) in params.iter().zip(&last_good.params) {
                        p.set_value(v.clone());
                    }
                    apply_state(&last_good.state, &mut vars, &mut opt, &mut rng)?;
                    vars.rollbacks = consumed;
                    d2stgnn_obsv::counter_add!("d2stgnn_core_train_rollback_total", 1);
                    if self.cfg.verbose {
                        d2stgnn_obsv::console_line(&format!(
                            "[{}] divergence at epoch {epoch}: rolled back (retry {consumed}/{}) \
                             with lr {:.3e}",
                            model.name(),
                            self.cfg.divergence_retries,
                            opt.learning_rate()
                        ));
                    }
                    continue 'training;
                }
                opt.step();
                d2stgnn_obsv::counter_add!("d2stgnn_core_train_batches_total", 1);
                d2stgnn_obsv::record!(batch_span, level = level);
                d2stgnn_obsv::record!(batch_span, loss = loss_val);
                d2stgnn_obsv::record!(batch_span, grad_norm = grad_norm);
                d2stgnn_obsv::record!(
                    batch_span,
                    grad_norm_clipped = grad_norm.min(self.cfg.clip_norm)
                );
                d2stgnn_obsv::observe!("d2stgnn_core_train_grad_norm", f64::from(grad_norm));
                vars.loss_sum += loss_val as f64;
                vars.loss_count += 1;
                vars.iteration += 1;
                vars.batch_cursor += 1;
                if self.cfg.checkpoint_every_batches > 0
                    && vars
                        .batch_cursor
                        .is_multiple_of(self.cfg.checkpoint_every_batches)
                {
                    last_good = self.restorepoint(&params, &vars, &opt, &rng);
                    if let Some(path) = &self.cfg.checkpoint_path {
                        write_checkpoint(model, &last_good.state, path)?;
                    }
                }
            }
            let seconds = start.elapsed().as_secs_f64();

            let val = self.evaluate(model, data, Split::Val);
            let stats = EpochStats {
                epoch,
                train_loss: (vars.loss_sum / vars.loss_count.max(1) as f64) as f32,
                val_mae: val.overall.mae,
                seconds,
            };
            d2stgnn_obsv::record!(epoch_span, train_loss = stats.train_loss);
            d2stgnn_obsv::record!(epoch_span, val_mae = stats.val_mae);
            d2stgnn_obsv::record!(epoch_span, seconds = seconds);
            drop(epoch_span);
            if self.cfg.verbose {
                d2stgnn_obsv::console_line(&format!(
                    "[{}] epoch {epoch:3}: train {:.4}  val MAE {:.4}  ({seconds:.1}s)",
                    model.name(),
                    stats.train_loss,
                    stats.val_mae
                ));
            }
            vars.epochs.push(stats);

            let improved = vars.best_val_mae.is_none_or(|best| val.overall.mae < best);
            if improved {
                vars.best_val_mae = Some(val.overall.mae);
                vars.best_epoch = epoch;
                vars.best_params = Some(params.iter().map(Tensor::value).collect());
                vars.since_best = 0;
            } else {
                vars.since_best += 1;
            }

            // Epoch boundary: advance, refresh the restore point, persist.
            vars.epoch += 1;
            vars.batch_cursor = 0;
            vars.epoch_order.clear();
            vars.loss_sum = 0.0;
            vars.loss_count = 0;
            last_good = self.restorepoint(&params, &vars, &opt, &rng);
            if let Some(path) = &self.cfg.checkpoint_path {
                write_checkpoint(model, &last_good.state, path)?;
            }
            if !improved && vars.since_best >= self.cfg.patience {
                break;
            }
        }

        if vars.max_level < tf {
            d2stgnn_obsv::event!(
                "d2stgnn_core_train_curriculum_truncated",
                max_level = vars.max_level,
                horizon = tf
            );
            if self.cfg.verbose {
                d2stgnn_obsv::console_line(&format!(
                    "[{}] WARNING: curriculum only reached horizon {}/{tf}; horizons beyond \
                     that were never supervised. Lower cl_step or raise max_epochs.",
                    model.name(),
                    vars.max_level
                ));
            }
        }
        // Restore the best parameters (early-stopping checkpoint).
        if let Some(best) = vars.best_params {
            for (p, v) in params.iter().zip(best) {
                p.set_value(v);
            }
        }
        Ok(TrainReport {
            best_val_mae: vars.best_val_mae.unwrap_or(f32::INFINITY),
            best_epoch: vars.best_epoch,
            avg_epoch_seconds: vars.epochs.iter().map(|e| e.seconds).sum::<f64>()
                / vars.epochs.len().max(1) as f64,
            epochs: vars.epochs,
            rollbacks: vars.rollbacks,
            final_lr: opt.learning_rate(),
        })
    }

    /// Capture the in-memory rollback target (parameters + full state), the
    /// same payload a persisted checkpoint carries.
    fn restorepoint(
        &self,
        params: &[Tensor],
        vars: &LoopVars,
        opt: &Adam,
        rng: &StdRng,
    ) -> Restorepoint {
        let mut state = TrainState {
            config: self.cfg.clone(),
            epoch: vars.epoch,
            batch_cursor: vars.batch_cursor,
            epoch_order: vars.epoch_order.clone(),
            iteration: vars.iteration,
            loss_sum: vars.loss_sum,
            loss_count: vars.loss_count,
            max_level: vars.max_level,
            since_best: vars.since_best,
            best_val_mae: vars.best_val_mae,
            best_epoch: vars.best_epoch,
            best_params: vars.best_params.clone(),
            epochs: vars.epochs.clone(),
            optimizer: opt.export_state(),
            lr: opt.learning_rate(),
            rng: rng.state().to_vec(),
            rollbacks: vars.rollbacks,
            state_checksum: None,
        };
        state.state_checksum = Some(state.compute_checksum());
        Restorepoint {
            params: params.iter().map(Tensor::value).collect(),
            state,
        }
    }

    /// Reject resume checkpoints whose trajectory-affecting configuration
    /// differs from this trainer's. Bounds (`max_epochs`, `patience`) and
    /// I/O fields may differ — extending a finished run is legitimate.
    fn check_resume_config(&self, saved: &TrainConfig) -> Result<(), TrainError> {
        let c = &self.cfg;
        let mut diffs: Vec<&str> = Vec::new();
        if saved.lr != c.lr {
            diffs.push("lr");
        }
        if saved.batch_size != c.batch_size {
            diffs.push("batch_size");
        }
        if saved.clip_norm != c.clip_norm {
            diffs.push("clip_norm");
        }
        if saved.curriculum != c.curriculum {
            diffs.push("curriculum");
        }
        if saved.cl_step != c.cl_step {
            diffs.push("cl_step");
        }
        if saved.lr_decay != c.lr_decay {
            diffs.push("lr_decay");
        }
        if saved.lr_decay_every != c.lr_decay_every {
            diffs.push("lr_decay_every");
        }
        if !(saved.null_val == c.null_val || (saved.null_val.is_nan() && c.null_val.is_nan())) {
            diffs.push("null_val");
        }
        if saved.seed != c.seed {
            diffs.push("seed");
        }
        if diffs.is_empty() {
            Ok(())
        } else {
            Err(TrainError::ResumeMismatch(format!(
                "checkpoint was written with different {}; resuming would not reproduce the \
                 interrupted trajectory",
                diffs.join(", ")
            )))
        }
    }

    /// Evaluate on a split: de-normalized predictions, per-horizon metrics.
    pub fn evaluate<M: TrafficModel + ?Sized>(
        &self,
        model: &M,
        data: &WindowedDataset,
        split: Split,
    ) -> EvalResult {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x5eed);
        let n = data.num_nodes();
        let tf = data.tf();
        let total = data.len(split);
        let mut pred = Array::zeros(&[total, tf, n]);
        let mut target = Array::zeros(&[total, tf, n]);
        let mut row = 0usize;
        for idx in data.epoch_batches(split, self.cfg.batch_size, false, &mut rng) {
            let batch = data.batch(split, &idx);
            // Inference mode: no autograd graph is recorded.
            let out = d2stgnn_tensor::no_grad(|| model.forward(&batch, false, &mut rng)).value();
            let out = data.scaler().inverse_transform(&out);
            let b = batch.batch_size();
            let flat_pred = crate::error::require(out.reshape(&[b, tf, n]), "squeeze channel");
            let flat_targ = crate::error::require(batch.y.reshape(&[b, tf, n]), "squeeze channel");
            pred.assign_slice_axis(0, row, &flat_pred);
            target.assign_slice_axis(0, row, &flat_targ);
            row += b;
        }
        let overall = metrics::evaluate_overall(&pred, &target, self.cfg.null_val);
        let hs: Vec<usize> = [3, 6, 12].into_iter().filter(|h| *h <= tf).collect();
        let horizons = metrics::evaluate_horizons(&pred, &target, &hs, self.cfg.null_val);
        EvalResult {
            pred,
            target,
            overall,
            horizons,
        }
    }
}

/// Restore optimizer, RNG, and loop counters from a [`TrainState`].
fn apply_state(
    state: &TrainState,
    vars: &mut LoopVars,
    opt: &mut Adam,
    rng: &mut StdRng,
) -> Result<(), TrainError> {
    opt.import_state(&state.optimizer)
        .map_err(|e| TrainError::ResumeMismatch(format!("optimizer state: {e}")))?;
    opt.set_learning_rate(state.lr);
    let words: [u64; 4] = state.rng.as_slice().try_into().map_err(|_| {
        TrainError::ResumeMismatch(format!(
            "expected 4 RNG state words, found {}",
            state.rng.len()
        ))
    })?;
    *rng = StdRng::from_state(words);
    vars.epoch = state.epoch;
    vars.batch_cursor = state.batch_cursor;
    vars.epoch_order = state.epoch_order.clone();
    vars.iteration = state.iteration;
    vars.loss_sum = state.loss_sum;
    vars.loss_count = state.loss_count;
    vars.max_level = state.max_level;
    vars.since_best = state.since_best;
    vars.best_val_mae = state.best_val_mae;
    vars.best_epoch = state.best_epoch;
    vars.best_params = state.best_params.clone();
    vars.epochs = state.epochs.clone();
    vars.rollbacks = state.rollbacks;
    Ok(())
}

/// Persist a full-state checkpoint (format v3) via the crash-safe writer.
fn write_checkpoint<M: TrafficModel + ?Sized>(
    model: &M,
    state: &TrainState,
    path: &str,
) -> Result<(), TrainError> {
    let mut span = d2stgnn_obsv::span!("d2stgnn_core_train_checkpoint");
    let mut ckpt = checkpoint::snapshot(model, &model.name());
    ckpt.train = Some(state.clone());
    checkpoint::persist(&ckpt, Path::new(path))?;
    d2stgnn_obsv::record!(span, epoch = state.epoch);
    d2stgnn_obsv::record!(span, iteration = state.iteration);
    d2stgnn_obsv::counter_add!("d2stgnn_core_train_checkpoints_total", 1);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::D2stgnnConfig;
    use crate::model::D2stgnn;
    use d2stgnn_data::{simulate, Batch, SimulatorConfig};
    use std::cell::Cell;

    fn tiny_dataset() -> WindowedDataset {
        let mut sim = SimulatorConfig::tiny();
        sim.num_nodes = 6;
        sim.num_steps = 288;
        sim.knn = 2;
        WindowedDataset::new(simulate(&sim), 12, 12, (0.6, 0.2, 0.2))
    }

    fn tiny_model(data: &WindowedDataset) -> D2stgnn {
        let mut cfg = D2stgnnConfig::small(6);
        cfg.layers = 1;
        cfg.hidden = 8;
        cfg.emb_dim = 4;
        cfg.heads = 2;
        let mut rng = StdRng::seed_from_u64(1);
        D2stgnn::new(cfg, &data.data().network.clone(), &mut rng)
    }

    fn params_digest<M: TrafficModel + ?Sized>(model: &M) -> u64 {
        let values: Vec<Array> = model.parameters().iter().map(Tensor::value).collect();
        checkpoint::params_checksum(&values)
    }

    /// Wraps a model and poisons the first `poison` *training* forwards with
    /// NaN predictions, simulating transient numeric blow-ups.
    struct FlakyModel {
        inner: D2stgnn,
        poison: Cell<usize>,
    }

    impl d2stgnn_tensor::nn::Module for FlakyModel {
        fn parameters(&self) -> Vec<Tensor> {
            self.inner.parameters()
        }
    }

    impl TrafficModel for FlakyModel {
        fn forward(&self, batch: &Batch, training: bool, rng: &mut StdRng) -> Tensor {
            let out = self.inner.forward(batch, training, rng);
            if training && self.poison.get() > 0 {
                self.poison.set(self.poison.get() - 1);
                return out.scale(f32::NAN);
            }
            out
        }

        fn name(&self) -> String {
            "flaky".to_string()
        }

        fn horizon(&self) -> usize {
            self.inner.horizon()
        }
    }

    #[test]
    fn training_improves_validation_mae() {
        let data = tiny_dataset();
        let model = tiny_model(&data);
        let trainer = Trainer::new(TrainConfig {
            max_epochs: 4,
            batch_size: 16,
            lr: 3e-3,
            curriculum: false,
            ..TrainConfig::default()
        });
        let before = trainer.evaluate(&model, &data, Split::Val).overall.mae;
        let report = trainer.train(&model, &data).expect("training must succeed");
        assert!(!report.epochs.is_empty());
        assert!(
            report.best_val_mae < before,
            "val MAE did not improve: {before} -> {}",
            report.best_val_mae
        );
        assert!(report.avg_epoch_seconds > 0.0);
        assert_eq!(report.rollbacks, 0);
        assert_eq!(report.final_lr, 3e-3);
    }

    #[test]
    fn early_stopping_restores_best_parameters() {
        let data = tiny_dataset();
        let model = tiny_model(&data);
        let trainer = Trainer::new(TrainConfig {
            max_epochs: 3,
            patience: 1,
            ..TrainConfig::default()
        });
        let report = trainer.train(&model, &data).expect("training must succeed");
        // After restore, evaluating val reproduces the best recorded MAE.
        let val = trainer.evaluate(&model, &data, Split::Val);
        assert!(
            (val.overall.mae - report.best_val_mae).abs() < 1e-4,
            "restored {} vs best {}",
            val.overall.mae,
            report.best_val_mae
        );
    }

    #[test]
    fn curriculum_level_grows() {
        // With curriculum on and a tiny cl_step, the first epoch supervises
        // fewer horizons -> its loss reflects only near horizons. We test the
        // mechanics indirectly: training still works and losses stay finite.
        let data = tiny_dataset();
        let model = tiny_model(&data);
        let trainer = Trainer::new(TrainConfig {
            max_epochs: 2,
            cl_step: 2,
            curriculum: true,
            ..TrainConfig::default()
        });
        let report = trainer.train(&model, &data).expect("training must succeed");
        assert!(report.epochs.iter().all(|e| e.train_loss.is_finite()));
    }

    #[test]
    fn lr_decay_schedule_runs_and_stays_finite() {
        let data = tiny_dataset();
        let model = tiny_model(&data);
        let trainer = Trainer::new(TrainConfig {
            max_epochs: 3,
            patience: 5,
            lr_decay: 0.5,
            lr_decay_every: 1,
            ..TrainConfig::default()
        });
        let report = trainer.train(&model, &data).expect("training must succeed");
        assert_eq!(report.epochs.len(), 3);
        assert!(report.epochs.iter().all(|e| e.train_loss.is_finite()));
        // Decayed at epochs 1 and 2: 1e-3 * 0.5^2.
        assert!(
            (report.final_lr - 0.25e-3).abs() < 1e-9,
            "{}",
            report.final_lr
        );
    }

    #[test]
    fn evaluate_shapes_and_horizons() {
        let data = tiny_dataset();
        let model = tiny_model(&data);
        let trainer = Trainer::new(TrainConfig::fast());
        let eval = trainer.evaluate(&model, &data, Split::Test);
        let s = data.len(Split::Test);
        assert_eq!(eval.pred.shape(), &[s, 12, 6]);
        assert_eq!(eval.target.shape(), &[s, 12, 6]);
        let hs: Vec<usize> = eval.horizons.iter().map(|(h, _)| *h).collect();
        assert_eq!(hs, vec![3, 6, 12]);
        assert!(eval.overall.mae >= 0.0);
    }

    #[test]
    fn empty_validation_split_is_rejected() {
        // Regression: an empty val split used to make every epoch's val MAE
        // exactly 0.0, so epoch 0 was recorded as "best" and early stopping
        // froze the untrained parameters.
        let mut sim = SimulatorConfig::tiny();
        sim.num_nodes = 6;
        sim.num_steps = 288;
        sim.knn = 2;
        let data = WindowedDataset::new(simulate(&sim), 12, 12, (0.8, 0.0, 0.2));
        assert!(
            data.is_empty(Split::Val),
            "fixture must have no val windows"
        );
        let model = tiny_model(&data);
        let err = Trainer::new(TrainConfig::fast())
            .train(&model, &data)
            .expect_err("empty validation split must be rejected");
        assert!(matches!(err, TrainError::EmptyValidation), "got {err}");
    }

    #[test]
    fn transient_divergence_rolls_back_and_halves_lr() {
        let data = tiny_dataset();
        let model = FlakyModel {
            inner: tiny_model(&data),
            poison: Cell::new(1),
        };
        let trainer = Trainer::new(TrainConfig {
            max_epochs: 1,
            curriculum: false,
            ..TrainConfig::default()
        });
        let report = trainer
            .train(&model, &data)
            .expect("a single poisoned batch must be recoverable");
        assert_eq!(report.rollbacks, 1);
        assert!(
            (report.final_lr - 0.5e-3).abs() < 1e-9,
            "rollback must halve the lr, got {}",
            report.final_lr
        );
        assert!(report.epochs.iter().all(|e| e.train_loss.is_finite()));
    }

    #[test]
    fn persistent_divergence_is_a_typed_error_not_a_panic() {
        // Regression: a non-finite loss used to abort the process via
        // `assert!`; it must now surface as `TrainError::Diverged` after the
        // rollback budget is exhausted.
        let data = tiny_dataset();
        let model = FlakyModel {
            inner: tiny_model(&data),
            poison: Cell::new(usize::MAX),
        };
        let trainer = Trainer::new(TrainConfig {
            max_epochs: 1,
            divergence_retries: 2,
            ..TrainConfig::default()
        });
        let err = trainer
            .train(&model, &data)
            .expect_err("permanent NaN must end in Diverged");
        match err {
            TrainError::Diverged {
                epoch, rollbacks, ..
            } => {
                assert_eq!(epoch, 0);
                assert_eq!(rollbacks, 2);
            }
            other => panic!("expected Diverged, got {other}"),
        }
    }

    #[test]
    fn resume_at_epoch_boundary_is_bit_identical() {
        let data = tiny_dataset();
        let dir = std::env::temp_dir().join("d2stgnn-train-resume-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("boundary.json");
        let cfg = TrainConfig {
            max_epochs: 2,
            batch_size: 16,
            curriculum: false,
            ..TrainConfig::default()
        };
        // Reference: uninterrupted 2-epoch run.
        let model_a = tiny_model(&data);
        Trainer::new(cfg.clone())
            .train(&model_a, &data)
            .expect("reference run");
        let reference = params_digest(&model_a);
        // Interrupted: 1 epoch with checkpointing, then resume to 2 epochs.
        let model_b = tiny_model(&data);
        let mut first = cfg.clone();
        first.max_epochs = 1;
        first.checkpoint_path = Some(path.to_string_lossy().into_owned());
        Trainer::new(first)
            .train(&model_b, &data)
            .expect("first leg");
        let model_c = tiny_model(&data);
        let mut second = cfg.clone();
        second.resume_from = Some(path.to_string_lossy().into_owned());
        let report = Trainer::new(second)
            .train(&model_c, &data)
            .expect("resumed leg");
        assert_eq!(report.epochs.len(), 2, "resume must keep epoch-0 stats");
        assert_eq!(
            params_digest(&model_c),
            reference,
            "resumed parameters must be bit-identical to the uninterrupted run"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_model_only_checkpoint() {
        let data = tiny_dataset();
        let model = tiny_model(&data);
        let dir = std::env::temp_dir().join("d2stgnn-train-resume-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("model-only.json");
        checkpoint::save(&model, "m", &path).expect("save");
        let mut cfg = TrainConfig::fast();
        cfg.resume_from = Some(path.to_string_lossy().into_owned());
        let err = Trainer::new(cfg)
            .train(&model, &data)
            .expect_err("model-only checkpoint must not resume");
        assert!(matches!(err, TrainError::ResumeMismatch(_)), "got {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_config_mismatch() {
        let data = tiny_dataset();
        let model = tiny_model(&data);
        let dir = std::env::temp_dir().join("d2stgnn-train-resume-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("mismatch.json");
        let mut cfg = TrainConfig::fast();
        cfg.max_epochs = 1;
        cfg.checkpoint_path = Some(path.to_string_lossy().into_owned());
        Trainer::new(cfg.clone())
            .train(&model, &data)
            .expect("first leg");
        let mut other = cfg;
        other.checkpoint_path = None;
        other.resume_from = Some(path.to_string_lossy().into_owned());
        other.seed = 999;
        let err = Trainer::new(other)
            .train(&model, &data)
            .expect_err("seed mismatch must be rejected");
        match err {
            TrainError::ResumeMismatch(msg) => assert!(msg.contains("seed"), "{msg}"),
            other => panic!("expected ResumeMismatch, got {other}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
