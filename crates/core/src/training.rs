//! Training loop (Section 5.4): Adam on masked MAE with curriculum learning
//! (the supervised horizon grows during training) and early stopping on
//! validation MAE, as in the paper's implementation.

use crate::traits::TrafficModel;
use d2stgnn_data::{metrics, Metrics, Split, WindowedDataset};
use d2stgnn_tensor::losses::masked_mae_loss;
use d2stgnn_tensor::optim::{clip_grad_norm, Adam, Optimizer};
use d2stgnn_tensor::{Array, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Trainer configuration. Defaults mirror Section 6.1 (Adam, lr 1e-3,
/// batch 32, early stopping) at CPU-friendly epoch counts.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Adam learning rate.
    pub lr: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Maximum epochs.
    pub max_epochs: usize,
    /// Early-stopping patience (epochs without val improvement).
    pub patience: usize,
    /// Global gradient-norm clip.
    pub clip_norm: f32,
    /// Curriculum learning (`w/o cl` disables): the supervised horizon starts
    /// at 1 and increases by one every `cl_step` iterations.
    pub curriculum: bool,
    /// Iterations per curriculum increment.
    pub cl_step: usize,
    /// Multiply the learning rate by this factor every `lr_decay_every`
    /// epochs (1.0 disables; the common traffic-forecasting recipe decays
    /// by 0.5 a few times over training).
    pub lr_decay: f32,
    /// Epochs between learning-rate decays.
    pub lr_decay_every: usize,
    /// Null value masked out of the loss and metrics (0 = failed sensor).
    pub null_val: f32,
    /// RNG seed for shuffling and dropout.
    pub seed: u64,
    /// Print per-epoch progress to stderr.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            batch_size: 32,
            max_epochs: 30,
            patience: 5,
            clip_norm: 5.0,
            curriculum: true,
            cl_step: 30,
            lr_decay: 1.0,
            lr_decay_every: 10,
            null_val: 0.0,
            seed: 7,
            verbose: false,
        }
    }
}

impl TrainConfig {
    /// A very short schedule for smoke tests.
    pub fn fast() -> Self {
        Self {
            max_epochs: 3,
            patience: 3,
            cl_step: 10,
            ..Self::default()
        }
    }
}

/// Statistics of one training epoch.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss (real-scale masked MAE over supervised horizons).
    pub train_loss: f32,
    /// Validation MAE over all horizons.
    pub val_mae: f32,
    /// Wall-clock seconds for the epoch's training phase.
    pub seconds: f64,
}

/// Result of a training run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainReport {
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
    /// Best validation MAE seen.
    pub best_val_mae: f32,
    /// Epoch index of the best validation MAE.
    pub best_epoch: usize,
    /// Mean training seconds per epoch (Figure 6's quantity).
    pub avg_epoch_seconds: f64,
}

/// Per-split evaluation output.
#[derive(Clone, Debug)]
pub struct EvalResult {
    /// Stacked de-normalized predictions `[S, T_f, N]`.
    pub pred: Array,
    /// Stacked raw targets `[S, T_f, N]`.
    pub target: Array,
    /// Metrics over all horizons jointly.
    pub overall: Metrics,
    /// Metrics at the paper's reporting horizons (3, 6, 12 when available).
    pub horizons: Vec<(usize, Metrics)>,
}

/// Orchestrates optimization, curriculum, early stopping, and evaluation.
pub struct Trainer {
    cfg: TrainConfig,
}

impl Trainer {
    /// New trainer.
    pub fn new(cfg: TrainConfig) -> Self {
        Self { cfg }
    }

    /// Trainer configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Train `model` on the dataset's train split, early-stopping on the
    /// validation split, restoring the best parameters before returning.
    pub fn train<M: TrafficModel + ?Sized>(
        &self,
        model: &M,
        data: &WindowedDataset,
    ) -> TrainReport {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut opt = Adam::new(model.parameters(), self.cfg.lr);
        let params = model.parameters();
        let scaler = *data.scaler();
        let tf = data.tf();

        let mut report = TrainReport {
            epochs: Vec::new(),
            best_val_mae: f32::INFINITY,
            best_epoch: 0,
            avg_epoch_seconds: 0.0,
        };
        let mut best_params: Option<Vec<Array>> = None;
        let mut since_best = 0usize;
        let mut iteration = 0usize;
        let mut max_level_reached = if self.cfg.curriculum { 1 } else { tf };

        for epoch in 0..self.cfg.max_epochs {
            // Learning-rate schedule.
            if self.cfg.lr_decay != 1.0
                && epoch > 0
                && self.cfg.lr_decay_every > 0
                && epoch % self.cfg.lr_decay_every == 0
            {
                opt.set_learning_rate(opt.learning_rate() * self.cfg.lr_decay);
            }
            let mut epoch_span = d2stgnn_obsv::span!("d2stgnn_core_train_epoch", epoch = epoch);
            d2stgnn_obsv::record!(epoch_span, lr = f64::from(opt.learning_rate()));
            d2stgnn_obsv::gauge_set!("d2stgnn_core_train_lr", f64::from(opt.learning_rate()));
            let start = Instant::now();
            let mut loss_sum = 0f64;
            let mut loss_count = 0usize;
            for idx in data.epoch_batches(Split::Train, self.cfg.batch_size, true, &mut rng) {
                let mut batch_span = d2stgnn_obsv::span!("d2stgnn_core_train_batch");
                let batch = data.batch(Split::Train, &idx);
                // Curriculum: supervise horizons 1..=level.
                let level = if self.cfg.curriculum {
                    (1 + iteration / self.cfg.cl_step.max(1)).min(tf)
                } else {
                    tf
                };
                max_level_reached = max_level_reached.max(level);
                let pred_norm = model.forward(&batch, true, &mut rng);
                let pred = pred_norm.scale(scaler.std()).add_scalar(scaler.mean());
                let target = Tensor::constant(batch.y.clone());
                let (pred_sup, target_sup) = if level < tf {
                    (pred.slice_axis(1, 0, level), target.slice_axis(1, 0, level))
                } else {
                    (pred, target)
                };
                let loss = masked_mae_loss(&pred_sup, &target_sup, self.cfg.null_val);
                let loss_val = loss.item();
                assert!(
                    loss_val.is_finite(),
                    "training diverged: non-finite loss at epoch {epoch}"
                );
                loss.backward();
                let grad_norm = clip_grad_norm(&params, self.cfg.clip_norm);
                opt.step();
                d2stgnn_obsv::counter_add!("d2stgnn_core_train_batches_total", 1);
                d2stgnn_obsv::record!(batch_span, level = level);
                d2stgnn_obsv::record!(batch_span, loss = loss_val);
                d2stgnn_obsv::record!(batch_span, grad_norm = grad_norm);
                d2stgnn_obsv::record!(
                    batch_span,
                    grad_norm_clipped = grad_norm.min(self.cfg.clip_norm)
                );
                d2stgnn_obsv::observe!("d2stgnn_core_train_grad_norm", f64::from(grad_norm));
                loss_sum += loss_val as f64;
                loss_count += 1;
                iteration += 1;
            }
            let seconds = start.elapsed().as_secs_f64();

            let val = self.evaluate(model, data, Split::Val);
            let stats = EpochStats {
                epoch,
                train_loss: (loss_sum / loss_count.max(1) as f64) as f32,
                val_mae: val.overall.mae,
                seconds,
            };
            d2stgnn_obsv::record!(epoch_span, train_loss = stats.train_loss);
            d2stgnn_obsv::record!(epoch_span, val_mae = stats.val_mae);
            d2stgnn_obsv::record!(epoch_span, seconds = seconds);
            drop(epoch_span);
            if self.cfg.verbose {
                d2stgnn_obsv::console_line(&format!(
                    "[{}] epoch {epoch:3}: train {:.4}  val MAE {:.4}  ({seconds:.1}s)",
                    model.name(),
                    stats.train_loss,
                    stats.val_mae
                ));
            }
            report.epochs.push(stats);

            if val.overall.mae < report.best_val_mae {
                report.best_val_mae = val.overall.mae;
                report.best_epoch = epoch;
                best_params = Some(params.iter().map(Tensor::value).collect());
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= self.cfg.patience {
                    break;
                }
            }
        }

        if max_level_reached < tf {
            d2stgnn_obsv::event!(
                "d2stgnn_core_train_curriculum_truncated",
                max_level = max_level_reached,
                horizon = tf
            );
            if self.cfg.verbose {
                d2stgnn_obsv::console_line(&format!(
                    "[{}] WARNING: curriculum only reached horizon {max_level_reached}/{tf}; \
                     horizons beyond that were never supervised. Lower cl_step or raise \
                     max_epochs.",
                    model.name()
                ));
            }
        }
        // Restore the best parameters (early-stopping checkpoint).
        if let Some(best) = best_params {
            for (p, v) in params.iter().zip(best) {
                p.set_value(v);
            }
        }
        report.avg_epoch_seconds = report.epochs.iter().map(|e| e.seconds).sum::<f64>()
            / report.epochs.len().max(1) as f64;
        report
    }

    /// Evaluate on a split: de-normalized predictions, per-horizon metrics.
    pub fn evaluate<M: TrafficModel + ?Sized>(
        &self,
        model: &M,
        data: &WindowedDataset,
        split: Split,
    ) -> EvalResult {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x5eed);
        let n = data.num_nodes();
        let tf = data.tf();
        let total = data.len(split);
        let mut pred = Array::zeros(&[total, tf, n]);
        let mut target = Array::zeros(&[total, tf, n]);
        let mut row = 0usize;
        for idx in data.epoch_batches(split, self.cfg.batch_size, false, &mut rng) {
            let batch = data.batch(split, &idx);
            // Inference mode: no autograd graph is recorded.
            let out = d2stgnn_tensor::no_grad(|| model.forward(&batch, false, &mut rng)).value();
            let out = data.scaler().inverse_transform(&out);
            let b = batch.batch_size();
            let flat_pred = crate::error::require(out.reshape(&[b, tf, n]), "squeeze channel");
            let flat_targ = crate::error::require(batch.y.reshape(&[b, tf, n]), "squeeze channel");
            pred.assign_slice_axis(0, row, &flat_pred);
            target.assign_slice_axis(0, row, &flat_targ);
            row += b;
        }
        let overall = metrics::evaluate_overall(&pred, &target, self.cfg.null_val);
        let hs: Vec<usize> = [3, 6, 12].into_iter().filter(|h| *h <= tf).collect();
        let horizons = metrics::evaluate_horizons(&pred, &target, &hs, self.cfg.null_val);
        EvalResult {
            pred,
            target,
            overall,
            horizons,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::D2stgnnConfig;
    use crate::model::D2stgnn;
    use d2stgnn_data::{simulate, SimulatorConfig};

    fn tiny_dataset() -> WindowedDataset {
        let mut sim = SimulatorConfig::tiny();
        sim.num_nodes = 6;
        sim.num_steps = 288;
        sim.knn = 2;
        WindowedDataset::new(simulate(&sim), 12, 12, (0.6, 0.2, 0.2))
    }

    fn tiny_model(data: &WindowedDataset) -> D2stgnn {
        let mut cfg = D2stgnnConfig::small(6);
        cfg.layers = 1;
        cfg.hidden = 8;
        cfg.emb_dim = 4;
        cfg.heads = 2;
        let mut rng = StdRng::seed_from_u64(1);
        D2stgnn::new(cfg, &data.data().network.clone(), &mut rng)
    }

    #[test]
    fn training_improves_validation_mae() {
        let data = tiny_dataset();
        let model = tiny_model(&data);
        let trainer = Trainer::new(TrainConfig {
            max_epochs: 4,
            batch_size: 16,
            lr: 3e-3,
            curriculum: false,
            ..TrainConfig::default()
        });
        let before = trainer.evaluate(&model, &data, Split::Val).overall.mae;
        let report = trainer.train(&model, &data);
        assert!(!report.epochs.is_empty());
        assert!(
            report.best_val_mae < before,
            "val MAE did not improve: {before} -> {}",
            report.best_val_mae
        );
        assert!(report.avg_epoch_seconds > 0.0);
    }

    #[test]
    fn early_stopping_restores_best_parameters() {
        let data = tiny_dataset();
        let model = tiny_model(&data);
        let trainer = Trainer::new(TrainConfig {
            max_epochs: 3,
            patience: 1,
            ..TrainConfig::default()
        });
        let report = trainer.train(&model, &data);
        // After restore, evaluating val reproduces the best recorded MAE.
        let val = trainer.evaluate(&model, &data, Split::Val);
        assert!(
            (val.overall.mae - report.best_val_mae).abs() < 1e-4,
            "restored {} vs best {}",
            val.overall.mae,
            report.best_val_mae
        );
    }

    #[test]
    fn curriculum_level_grows() {
        // With curriculum on and a tiny cl_step, the first epoch supervises
        // fewer horizons -> its loss reflects only near horizons. We test the
        // mechanics indirectly: training still works and losses stay finite.
        let data = tiny_dataset();
        let model = tiny_model(&data);
        let trainer = Trainer::new(TrainConfig {
            max_epochs: 2,
            cl_step: 2,
            curriculum: true,
            ..TrainConfig::default()
        });
        let report = trainer.train(&model, &data);
        assert!(report.epochs.iter().all(|e| e.train_loss.is_finite()));
    }

    #[test]
    fn lr_decay_schedule_runs_and_stays_finite() {
        let data = tiny_dataset();
        let model = tiny_model(&data);
        let trainer = Trainer::new(TrainConfig {
            max_epochs: 3,
            patience: 5,
            lr_decay: 0.5,
            lr_decay_every: 1,
            ..TrainConfig::default()
        });
        let report = trainer.train(&model, &data);
        assert_eq!(report.epochs.len(), 3);
        assert!(report.epochs.iter().all(|e| e.train_loss.is_finite()));
    }

    #[test]
    fn evaluate_shapes_and_horizons() {
        let data = tiny_dataset();
        let model = tiny_model(&data);
        let trainer = Trainer::new(TrainConfig::fast());
        let eval = trainer.evaluate(&model, &data, Split::Test);
        let s = data.len(Split::Test);
        assert_eq!(eval.pred.shape(), &[s, 12, 6]);
        assert_eq!(eval.target.shape(), &[s, 12, 6]);
        let hs: Vec<usize> = eval.horizons.iter().map(|(h, _)| *h).collect();
        assert_eq!(hs, vec![3, 6, 12]);
        assert!(eval.overall.mae >= 0.0);
    }
}
