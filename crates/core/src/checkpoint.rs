//! Model checkpointing: save/load the flat parameter list of any
//! [`crate::TrafficModel`] (or any [`Module`]) as JSON. Shapes are validated on
//! load, so a checkpoint can only be restored into an identically
//! configured model.

use d2stgnn_tensor::nn::Module;
use d2stgnn_tensor::Array;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A serialized set of model parameters.
#[derive(Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Free-form model tag (used for a sanity warning on mismatch).
    pub model: String,
    /// Parameter values in the module's canonical order.
    pub parameters: Vec<Array>,
}

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON.
    Parse(String),
    /// Parameter count or shapes disagree with the target model.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::Parse(e) => write!(f, "checkpoint parse: {e}"),
            CheckpointError::Mismatch(e) => write!(f, "checkpoint mismatch: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Capture a module's parameters.
pub fn snapshot<M: Module + ?Sized>(model: &M, tag: &str) -> Checkpoint {
    Checkpoint {
        version: 1,
        model: tag.to_string(),
        parameters: model.parameters().iter().map(|p| p.value()).collect(),
    }
}

/// Restore parameters into a module; every shape must match.
pub fn restore<M: Module + ?Sized>(model: &M, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
    let params = model.parameters();
    if params.len() != ckpt.parameters.len() {
        return Err(CheckpointError::Mismatch(format!(
            "model has {} parameters, checkpoint has {}",
            params.len(),
            ckpt.parameters.len()
        )));
    }
    for (i, (p, v)) in params.iter().zip(&ckpt.parameters).enumerate() {
        if p.shape() != v.shape() {
            return Err(CheckpointError::Mismatch(format!(
                "parameter {i}: model shape {:?} vs checkpoint {:?}",
                p.shape(),
                v.shape()
            )));
        }
    }
    for (p, v) in params.iter().zip(&ckpt.parameters) {
        p.set_value(v.clone());
    }
    Ok(())
}

/// Save a module's parameters to a JSON file.
pub fn save<M: Module + ?Sized>(model: &M, tag: &str, path: &Path) -> Result<(), CheckpointError> {
    let ckpt = snapshot(model, tag);
    let json = serde_json::to_string(&ckpt).map_err(|e| CheckpointError::Parse(e.to_string()))?;
    std::fs::write(path, json)?;
    Ok(())
}

/// Load a module's parameters from a JSON file.
pub fn load<M: Module + ?Sized>(model: &M, path: &Path) -> Result<String, CheckpointError> {
    let json = std::fs::read_to_string(path)?;
    let ckpt: Checkpoint =
        serde_json::from_str(&json).map_err(|e| CheckpointError::Parse(e.to_string()))?;
    restore(model, &ckpt)?;
    Ok(ckpt.model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2stgnn_tensor::nn::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Linear::new(3, 2, true, &mut rng);
        let ckpt = snapshot(&a, "linear");
        // Mutate, then restore.
        for p in a.parameters() {
            p.set_value(Array::zeros(&p.shape()));
        }
        assert_eq!(a.parameters()[0].value().sum_all(), 0.0);
        restore(&a, &ckpt).unwrap();
        assert_eq!(a.parameters()[0].value(), ckpt.parameters[0]);
    }

    #[test]
    fn restore_rejects_wrong_model() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Linear::new(3, 2, true, &mut rng);
        let b = Linear::new(4, 2, true, &mut rng);
        let ckpt = snapshot(&a, "a");
        let err = restore(&b, &ckpt).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)));
        let c = Linear::new(3, 2, false, &mut rng);
        let err = restore(&c, &ckpt).unwrap_err();
        assert!(err.to_string().contains("parameters"));
    }

    #[test]
    fn file_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Linear::new(2, 2, true, &mut rng);
        let dir = std::env::temp_dir().join("d2stgnn-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lin.json");
        save(&a, "lin", &path).unwrap();
        let before = a.parameters()[0].value();
        for p in a.parameters() {
            p.set_value(Array::zeros(&p.shape()));
        }
        let tag = load(&a, &path).unwrap();
        assert_eq!(tag, "lin");
        assert_eq!(a.parameters()[0].value(), before);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_reports_missing_file() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Linear::new(2, 2, true, &mut rng);
        let err = load(&a, Path::new("/nonexistent/ckpt.json")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
