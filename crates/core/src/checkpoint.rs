//! Model checkpointing: save/load the flat parameter list of any
//! [`crate::TrafficModel`] (or any [`Module`]) as JSON. Shapes are validated on
//! load, so a checkpoint can only be restored into an identically
//! configured model.

use d2stgnn_tensor::nn::Module;
use d2stgnn_tensor::Array;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current checkpoint format version written by [`snapshot`].
pub const FORMAT_VERSION: u32 = 2;

/// A serialized set of model parameters.
#[derive(Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Free-form model tag (used for a sanity warning on mismatch).
    pub model: String,
    /// Parameter values in the module's canonical order.
    pub parameters: Vec<Array>,
    /// Total number of scalar parameters (v2+; `None` in v1 files).
    pub param_count: Option<u64>,
    /// FNV-1a checksum over every parameter's f32 bit pattern in canonical
    /// order (v2+; `None` in v1 files). Detects silent corruption.
    pub checksum: Option<u64>,
}

/// FNV-1a over the little-endian f32 bit patterns of all parameter arrays in
/// order. Bit-pattern based, so `-0.0`/`0.0` and distinct NaN payloads hash
/// differently and the digest is platform independent.
pub fn params_checksum(parameters: &[Array]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for array in parameters {
        for v in array.data() {
            for b in v.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    h
}

impl Checkpoint {
    /// Total scalar parameter count of the stored arrays.
    pub fn total_params(&self) -> u64 {
        self.parameters.iter().map(|a| a.data().len() as u64).sum()
    }

    /// Verify the stored integrity metadata against the parameter payload.
    ///
    /// v1 checkpoints carry no metadata and pass vacuously; v2 checkpoints
    /// must match both the parameter count and the checksum.
    pub fn verify_integrity(&self) -> Result<(), CheckpointError> {
        if let Some(expected) = self.param_count {
            let actual = self.total_params();
            if actual != expected {
                return Err(CheckpointError::Mismatch(format!(
                    "checkpoint declares {expected} scalar parameters but payload has {actual}"
                )));
            }
        }
        if let Some(expected) = self.checksum {
            let actual = params_checksum(&self.parameters);
            if actual != expected {
                return Err(CheckpointError::Mismatch(format!(
                    "checkpoint checksum {expected:#018x} does not match payload {actual:#018x}"
                )));
            }
        }
        Ok(())
    }
}

pub use crate::error::CheckpointError;

/// Capture a module's parameters.
pub fn snapshot<M: Module + ?Sized>(model: &M, tag: &str) -> Checkpoint {
    let parameters: Vec<Array> = model.parameters().iter().map(|p| p.value()).collect();
    let param_count = parameters.iter().map(|a| a.data().len() as u64).sum();
    let checksum = params_checksum(&parameters);
    Checkpoint {
        version: FORMAT_VERSION,
        model: tag.to_string(),
        parameters,
        param_count: Some(param_count),
        checksum: Some(checksum),
    }
}

/// Restore parameters into a module; every shape must match.
pub fn restore<M: Module + ?Sized>(model: &M, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
    let params = model.parameters();
    if params.len() != ckpt.parameters.len() {
        return Err(CheckpointError::Mismatch(format!(
            "model has {} parameters, checkpoint has {}",
            params.len(),
            ckpt.parameters.len()
        )));
    }
    for (i, (p, v)) in params.iter().zip(&ckpt.parameters).enumerate() {
        if p.shape() != v.shape() {
            return Err(CheckpointError::Mismatch(format!(
                "parameter {i}: model shape {:?} vs checkpoint {:?}",
                p.shape(),
                v.shape()
            )));
        }
    }
    for (p, v) in params.iter().zip(&ckpt.parameters) {
        p.set_value(v.clone());
    }
    Ok(())
}

/// Save a module's parameters to a JSON file.
pub fn save<M: Module + ?Sized>(model: &M, tag: &str, path: &Path) -> Result<(), CheckpointError> {
    let ckpt = snapshot(model, tag);
    let json = serde_json::to_string(&ckpt).map_err(|e| CheckpointError::Parse(e.to_string()))?;
    std::fs::write(path, json)?;
    Ok(())
}

/// Parse a checkpoint from a JSON file and verify its integrity metadata
/// (v2+ files; v1 files have none and are accepted as-is).
pub fn read(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let json = std::fs::read_to_string(path)?;
    let ckpt: Checkpoint =
        serde_json::from_str(&json).map_err(|e| CheckpointError::Parse(e.to_string()))?;
    ckpt.verify_integrity()?;
    Ok(ckpt)
}

/// Load a module's parameters from a JSON file, verifying integrity first.
pub fn load<M: Module + ?Sized>(model: &M, path: &Path) -> Result<String, CheckpointError> {
    let ckpt = read(path)?;
    restore(model, &ckpt)?;
    Ok(ckpt.model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2stgnn_tensor::nn::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn snapshot_restore_roundtrip() -> Result<(), CheckpointError> {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Linear::new(3, 2, true, &mut rng);
        let ckpt = snapshot(&a, "linear");
        // Mutate, then restore.
        for p in a.parameters() {
            p.set_value(Array::zeros(&p.shape()));
        }
        assert_eq!(a.parameters()[0].value().sum_all(), 0.0);
        restore(&a, &ckpt)?;
        assert_eq!(a.parameters()[0].value(), ckpt.parameters[0]);
        Ok(())
    }

    #[test]
    fn restore_rejects_wrong_model() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Linear::new(3, 2, true, &mut rng);
        let b = Linear::new(4, 2, true, &mut rng);
        let ckpt = snapshot(&a, "a");
        let err = restore(&b, &ckpt).expect_err("shape mismatch must be rejected");
        assert!(matches!(err, CheckpointError::Mismatch(_)));
        let c = Linear::new(3, 2, false, &mut rng);
        let err = restore(&c, &ckpt).expect_err("count mismatch must be rejected");
        assert!(err.to_string().contains("parameters"));
    }

    #[test]
    fn file_roundtrip() -> Result<(), CheckpointError> {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Linear::new(2, 2, true, &mut rng);
        let dir = std::env::temp_dir().join("d2stgnn-ckpt-test");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("lin.json");
        save(&a, "lin", &path)?;
        let before = a.parameters()[0].value();
        for p in a.parameters() {
            p.set_value(Array::zeros(&p.shape()));
        }
        let tag = load(&a, &path)?;
        assert_eq!(tag, "lin");
        assert_eq!(a.parameters()[0].value(), before);
        std::fs::remove_file(&path).ok();
        Ok(())
    }

    #[test]
    fn snapshot_carries_integrity_metadata() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Linear::new(3, 4, true, &mut rng);
        let ckpt = snapshot(&a, "lin");
        assert_eq!(ckpt.version, FORMAT_VERSION);
        assert_eq!(ckpt.param_count, Some(3 * 4 + 4));
        assert_eq!(ckpt.checksum, Some(params_checksum(&ckpt.parameters)));
        ckpt.verify_integrity().expect("fresh snapshot must verify");
    }

    #[test]
    fn v1_checkpoint_without_metadata_still_loads() -> Result<(), CheckpointError> {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Linear::new(2, 3, true, &mut rng);
        // Serialize, then strip the v2 fields to fabricate a v1-era file.
        let mut ckpt = snapshot(&a, "legacy");
        ckpt.version = 1;
        ckpt.param_count = None;
        ckpt.checksum = None;
        let json =
            serde_json::to_string(&ckpt).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        assert!(!json.contains("\"param_count\":1") && json.contains("\"version\":1"));
        let dir = std::env::temp_dir().join("d2stgnn-ckpt-test");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("v1.json");
        std::fs::write(&path, &json)?;
        let loaded = read(&path)?;
        assert_eq!(loaded.version, 1);
        assert_eq!(loaded.param_count, None);
        assert_eq!(loaded.checksum, None);
        load(&a, &path)?;
        std::fs::remove_file(&path).ok();
        Ok(())
    }

    #[test]
    fn corrupted_payload_is_rejected() -> Result<(), CheckpointError> {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Linear::new(2, 2, true, &mut rng);
        let dir = std::env::temp_dir().join("d2stgnn-ckpt-test");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("corrupt.json");
        save(&a, "lin", &path)?;
        // Flip one stored bias element (zero-initialized, so its JSON form is
        // exact) without updating the checksum.
        let json = std::fs::read_to_string(&path)?;
        let tampered = json.replacen("\"data\":[0,0]", "\"data\":[1,0]", 1);
        assert_ne!(json, tampered, "tamper target value not found in JSON");
        std::fs::write(&path, &tampered)?;
        let err = load(&a, &path).expect_err("tampered payload must be rejected");
        assert!(matches!(err, CheckpointError::Mismatch(_)), "got {err}");
        assert!(err.to_string().contains("checksum"));
        std::fs::remove_file(&path).ok();
        Ok(())
    }

    #[test]
    fn wrong_param_count_is_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Linear::new(2, 2, true, &mut rng);
        let mut ckpt = snapshot(&a, "lin");
        ckpt.param_count = Some(ckpt.total_params() + 1);
        let err = ckpt
            .verify_integrity()
            .expect_err("inflated param count must be rejected");
        assert!(err.to_string().contains("scalar parameters"));
    }

    #[test]
    fn load_reports_missing_file() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Linear::new(2, 2, true, &mut rng);
        let err = load(&a, Path::new("/nonexistent/ckpt.json"))
            .expect_err("missing file must surface an I/O error");
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
