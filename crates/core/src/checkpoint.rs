//! Model checkpointing: save/load the flat parameter list of any
//! [`crate::TrafficModel`] (or any [`Module`]) as JSON. Shapes are validated
//! on load, so a checkpoint can only be restored into an identically
//! configured model.
//!
//! Format history:
//! * **v1** — parameters only.
//! * **v2** — adds `param_count` + FNV-1a `checksum` integrity metadata.
//! * **v3** — adds an optional [`TrainState`]: the full mutable state of a
//!   training run (Adam moments, RNG words, curriculum/epoch counters,
//!   early-stopping bookkeeping, best-params snapshot) with its own
//!   checksum, enabling exact, bit-identical resume after a crash. Files are
//!   written crash-safely via [`write_atomic`] (temp file + fsync + rename).
//!
//! Every older version still loads: missing fields deserialize to `None`.

use crate::training::{EpochStats, TrainConfig};
use d2stgnn_tensor::nn::Module;
use d2stgnn_tensor::optim::AdamState;
use d2stgnn_tensor::Array;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// Current checkpoint format version written by [`snapshot`].
pub const FORMAT_VERSION: u32 = 3;

/// A serialized set of model parameters.
#[derive(Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Free-form model tag (used for a sanity warning on mismatch).
    pub model: String,
    /// Parameter values in the module's canonical order.
    pub parameters: Vec<Array>,
    /// Total number of scalar parameters (v2+; `None` in v1 files).
    pub param_count: Option<u64>,
    /// FNV-1a checksum over every parameter's f32 bit pattern in canonical
    /// order (v2+; `None` in v1 files). Detects silent corruption.
    pub checksum: Option<u64>,
    /// Full training-run state (v3+; `None` in model-only snapshots and all
    /// older files). Ignored by inference-only consumers such as the serving
    /// registry, which restore just `parameters`.
    pub train: Option<TrainState>,
}

/// Everything mutable about an in-flight training run, captured at a batch
/// boundary so [`crate::Trainer::train`] can resume bit-identically.
#[derive(Clone, Serialize, Deserialize)]
pub struct TrainState {
    /// Trainer configuration at save time; resume verifies the
    /// trajectory-affecting fields still match.
    pub config: TrainConfig,
    /// Epoch currently in progress (0-based).
    pub epoch: usize,
    /// Batches already completed within `epoch`.
    pub batch_cursor: usize,
    /// Shuffled window order of the in-progress epoch (chunked by
    /// `config.batch_size` to recover the batch sequence).
    pub epoch_order: Vec<usize>,
    /// Global iteration counter (drives the curriculum level).
    pub iteration: usize,
    /// Running loss sum over the in-progress epoch.
    pub loss_sum: f64,
    /// Batches contributing to `loss_sum`.
    pub loss_count: usize,
    /// Highest curriculum level supervised so far.
    pub max_level: usize,
    /// Epochs since the last validation improvement.
    pub since_best: usize,
    /// Best validation MAE so far (`None` before the first evaluation).
    pub best_val_mae: Option<f32>,
    /// Epoch index of the best validation MAE.
    pub best_epoch: usize,
    /// Parameter snapshot at the best epoch (early-stopping restore target).
    pub best_params: Option<Vec<Array>>,
    /// Per-epoch statistics of the run so far.
    pub epochs: Vec<EpochStats>,
    /// Adam step counter and moment estimates, in parameter order.
    pub optimizer: AdamState,
    /// Learning rate in effect (after schedules and divergence halving).
    pub lr: f32,
    /// Shuffling/dropout RNG state words (`StdRng::state`).
    pub rng: Vec<u64>,
    /// Divergence rollbacks consumed so far.
    pub rollbacks: usize,
    /// FNV-1a over the optimizer moments, best-params snapshot, and RNG
    /// words (`None` only in hand-built states). Detects silent corruption
    /// of the non-parameter payload.
    pub state_checksum: Option<u64>,
}

impl TrainState {
    /// FNV-1a digest over the state's array payloads (optimizer moments and
    /// the best-params snapshot) plus the RNG words.
    pub fn compute_checksum(&self) -> u64 {
        let mut h = Fnv1a::new();
        for slot in self.optimizer.m.iter().chain(self.optimizer.v.iter()) {
            match slot {
                Some(a) => h.update_array(a),
                // Distinguish `[None, x]` from `[x, None]`.
                None => h.update_bytes(&[0xff]),
            }
        }
        if let Some(best) = &self.best_params {
            for a in best {
                h.update_array(a);
            }
        }
        for w in &self.rng {
            h.update_bytes(&w.to_le_bytes());
        }
        h.finish()
    }
}

/// Incremental FNV-1a hasher shared by the parameter and train-state
/// checksums.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn update_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn update_array(&mut self, array: &Array) {
        for v in array.data() {
            self.update_bytes(&v.to_bits().to_le_bytes());
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a over the little-endian f32 bit patterns of all parameter arrays in
/// order. Bit-pattern based, so `-0.0`/`0.0` and distinct NaN payloads hash
/// differently and the digest is platform independent.
pub fn params_checksum(parameters: &[Array]) -> u64 {
    let mut h = Fnv1a::new();
    for array in parameters {
        h.update_array(array);
    }
    h.finish()
}

impl Checkpoint {
    /// Total scalar parameter count of the stored arrays.
    pub fn total_params(&self) -> u64 {
        self.parameters.iter().map(|a| a.data().len() as u64).sum()
    }

    /// Verify the stored integrity metadata against the parameter payload.
    ///
    /// v1 checkpoints carry no metadata and pass vacuously; v2 checkpoints
    /// must match both the parameter count and the checksum; v3 checkpoints
    /// additionally verify the train-state checksum when one is present.
    pub fn verify_integrity(&self) -> Result<(), CheckpointError> {
        if let Some(expected) = self.param_count {
            let actual = self.total_params();
            if actual != expected {
                return Err(CheckpointError::Mismatch(format!(
                    "checkpoint declares {expected} scalar parameters but payload has {actual}"
                )));
            }
        }
        if let Some(expected) = self.checksum {
            let actual = params_checksum(&self.parameters);
            if actual != expected {
                return Err(CheckpointError::Mismatch(format!(
                    "checkpoint checksum {expected:#018x} does not match payload {actual:#018x}"
                )));
            }
        }
        if let Some(train) = &self.train {
            if let Some(expected) = train.state_checksum {
                let actual = train.compute_checksum();
                if actual != expected {
                    return Err(CheckpointError::Mismatch(format!(
                        "train-state checksum {expected:#018x} does not match payload \
                         {actual:#018x}"
                    )));
                }
            }
        }
        Ok(())
    }
}

pub use crate::error::CheckpointError;

/// Capture a module's parameters.
pub fn snapshot<M: Module + ?Sized>(model: &M, tag: &str) -> Checkpoint {
    let parameters: Vec<Array> = model.parameters().iter().map(|p| p.value()).collect();
    let param_count = parameters.iter().map(|a| a.data().len() as u64).sum();
    let checksum = params_checksum(&parameters);
    Checkpoint {
        version: FORMAT_VERSION,
        model: tag.to_string(),
        parameters,
        param_count: Some(param_count),
        checksum: Some(checksum),
        train: None,
    }
}

/// Restore parameters into a module; every shape must match.
pub fn restore<M: Module + ?Sized>(model: &M, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
    let params = model.parameters();
    if params.len() != ckpt.parameters.len() {
        return Err(CheckpointError::Mismatch(format!(
            "model has {} parameters, checkpoint has {}",
            params.len(),
            ckpt.parameters.len()
        )));
    }
    for (i, (p, v)) in params.iter().zip(&ckpt.parameters).enumerate() {
        if p.shape() != v.shape() {
            return Err(CheckpointError::Mismatch(format!(
                "parameter {i}: model shape {:?} vs checkpoint {:?}",
                p.shape(),
                v.shape()
            )));
        }
    }
    for (p, v) in params.iter().zip(&ckpt.parameters) {
        p.set_value(v.clone());
    }
    Ok(())
}

/// Write `bytes` to `path` crash-safely: serialize into a same-directory
/// temp file, fsync it, then atomically rename it over the destination. A
/// process killed at any instant leaves either the previous file intact or
/// the complete new one — never a truncated hybrid. The directory itself is
/// fsynced best-effort so the rename survives a power loss too.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        std::fs::remove_file(&tmp).ok();
        return Err(e.into());
    }
    if let Some(dir) = dir {
        if let Ok(d) = std::fs::File::open(dir) {
            d.sync_all().ok();
        }
    }
    Ok(())
}

/// Serialize a checkpoint value to `path` via [`write_atomic`].
pub fn persist(ckpt: &Checkpoint, path: &Path) -> Result<(), CheckpointError> {
    let json = serde_json::to_string(ckpt).map_err(|e| CheckpointError::Parse(e.to_string()))?;
    write_atomic(path, json.as_bytes())
}

/// Save a module's parameters to a JSON file (crash-safe write).
pub fn save<M: Module + ?Sized>(model: &M, tag: &str, path: &Path) -> Result<(), CheckpointError> {
    persist(&snapshot(model, tag), path)
}

/// Parse a checkpoint from a JSON file and verify its integrity metadata
/// (v2+ files; v1 files have none and are accepted as-is).
pub fn read(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let json = std::fs::read_to_string(path)?;
    let ckpt: Checkpoint =
        serde_json::from_str(&json).map_err(|e| CheckpointError::Parse(e.to_string()))?;
    ckpt.verify_integrity()?;
    Ok(ckpt)
}

/// Load a module's parameters from a JSON file, verifying integrity first.
pub fn load<M: Module + ?Sized>(model: &M, path: &Path) -> Result<String, CheckpointError> {
    let ckpt = read(path)?;
    restore(model, &ckpt)?;
    Ok(ckpt.model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2stgnn_tensor::nn::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn snapshot_restore_roundtrip() -> Result<(), CheckpointError> {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Linear::new(3, 2, true, &mut rng);
        let ckpt = snapshot(&a, "linear");
        // Mutate, then restore.
        for p in a.parameters() {
            p.set_value(Array::zeros(&p.shape()));
        }
        assert_eq!(a.parameters()[0].value().sum_all(), 0.0);
        restore(&a, &ckpt)?;
        assert_eq!(a.parameters()[0].value(), ckpt.parameters[0]);
        Ok(())
    }

    #[test]
    fn restore_rejects_wrong_model() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Linear::new(3, 2, true, &mut rng);
        let b = Linear::new(4, 2, true, &mut rng);
        let ckpt = snapshot(&a, "a");
        let err = restore(&b, &ckpt).expect_err("shape mismatch must be rejected");
        assert!(matches!(err, CheckpointError::Mismatch(_)));
        let c = Linear::new(3, 2, false, &mut rng);
        let err = restore(&c, &ckpt).expect_err("count mismatch must be rejected");
        assert!(err.to_string().contains("parameters"));
    }

    #[test]
    fn file_roundtrip() -> Result<(), CheckpointError> {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Linear::new(2, 2, true, &mut rng);
        let dir = std::env::temp_dir().join("d2stgnn-ckpt-test");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("lin.json");
        save(&a, "lin", &path)?;
        let before = a.parameters()[0].value();
        for p in a.parameters() {
            p.set_value(Array::zeros(&p.shape()));
        }
        let tag = load(&a, &path)?;
        assert_eq!(tag, "lin");
        assert_eq!(a.parameters()[0].value(), before);
        std::fs::remove_file(&path).ok();
        Ok(())
    }

    #[test]
    fn snapshot_carries_integrity_metadata() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Linear::new(3, 4, true, &mut rng);
        let ckpt = snapshot(&a, "lin");
        assert_eq!(ckpt.version, FORMAT_VERSION);
        assert_eq!(ckpt.param_count, Some(3 * 4 + 4));
        assert_eq!(ckpt.checksum, Some(params_checksum(&ckpt.parameters)));
        ckpt.verify_integrity().expect("fresh snapshot must verify");
    }

    #[test]
    fn v1_checkpoint_without_metadata_still_loads() -> Result<(), CheckpointError> {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Linear::new(2, 3, true, &mut rng);
        // Serialize, then strip the v2 fields to fabricate a v1-era file.
        let mut ckpt = snapshot(&a, "legacy");
        ckpt.version = 1;
        ckpt.param_count = None;
        ckpt.checksum = None;
        let json =
            serde_json::to_string(&ckpt).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        assert!(!json.contains("\"param_count\":1") && json.contains("\"version\":1"));
        let dir = std::env::temp_dir().join("d2stgnn-ckpt-test");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("v1.json");
        std::fs::write(&path, &json)?;
        let loaded = read(&path)?;
        assert_eq!(loaded.version, 1);
        assert_eq!(loaded.param_count, None);
        assert_eq!(loaded.checksum, None);
        load(&a, &path)?;
        std::fs::remove_file(&path).ok();
        Ok(())
    }

    #[test]
    fn corrupted_payload_is_rejected() -> Result<(), CheckpointError> {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Linear::new(2, 2, true, &mut rng);
        let dir = std::env::temp_dir().join("d2stgnn-ckpt-test");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("corrupt.json");
        save(&a, "lin", &path)?;
        // Flip one stored bias element (zero-initialized, so its JSON form is
        // exact) without updating the checksum.
        let json = std::fs::read_to_string(&path)?;
        let tampered = json.replacen("\"data\":[0,0]", "\"data\":[1,0]", 1);
        assert_ne!(json, tampered, "tamper target value not found in JSON");
        std::fs::write(&path, &tampered)?;
        let err = load(&a, &path).expect_err("tampered payload must be rejected");
        assert!(matches!(err, CheckpointError::Mismatch(_)), "got {err}");
        assert!(err.to_string().contains("checksum"));
        std::fs::remove_file(&path).ok();
        Ok(())
    }

    #[test]
    fn wrong_param_count_is_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Linear::new(2, 2, true, &mut rng);
        let mut ckpt = snapshot(&a, "lin");
        ckpt.param_count = Some(ckpt.total_params() + 1);
        let err = ckpt
            .verify_integrity()
            .expect_err("inflated param count must be rejected");
        assert!(err.to_string().contains("scalar parameters"));
    }

    #[test]
    fn load_reports_missing_file() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Linear::new(2, 2, true, &mut rng);
        let err = load(&a, Path::new("/nonexistent/ckpt.json"))
            .expect_err("missing file must surface an I/O error");
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    fn arr(data: &[f32]) -> Array {
        Array::from_vec(&[data.len()], data.to_vec()).expect("test array")
    }

    fn sample_train_state() -> TrainState {
        let mut s = TrainState {
            config: TrainConfig::default(),
            epoch: 1,
            batch_cursor: 3,
            epoch_order: vec![4, 2, 0, 1, 3],
            iteration: 8,
            loss_sum: 1.5,
            loss_count: 3,
            max_level: 2,
            since_best: 1,
            best_val_mae: Some(0.75),
            best_epoch: 0,
            best_params: Some(vec![arr(&[0.1, -0.2])]),
            epochs: vec![EpochStats {
                epoch: 0,
                train_loss: 1.0,
                val_mae: 0.75,
                seconds: 0.5,
            }],
            optimizer: AdamState {
                t: 8,
                m: vec![Some(arr(&[1.0, 2.0])), None, Some(arr(&[-3.5]))],
                v: vec![Some(arr(&[0.5, 0.25])), None, Some(arr(&[0.125]))],
            },
            lr: 5e-4,
            rng: vec![1, 2, 3, 4],
            rollbacks: 1,
            state_checksum: None,
        };
        s.state_checksum = Some(s.compute_checksum());
        s
    }

    #[test]
    fn v3_train_state_roundtrips() -> Result<(), CheckpointError> {
        let mut rng = StdRng::seed_from_u64(8);
        let a = Linear::new(2, 2, true, &mut rng);
        let mut ckpt = snapshot(&a, "trainer");
        ckpt.train = Some(sample_train_state());
        let dir = std::env::temp_dir().join("d2stgnn-ckpt-test");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("v3.json");
        persist(&ckpt, &path)?;
        let loaded = read(&path)?;
        assert_eq!(loaded.version, FORMAT_VERSION);
        let t = loaded.train.expect("v3 file must carry training state");
        assert_eq!(t.epoch, 1);
        assert_eq!(t.batch_cursor, 3);
        assert_eq!(t.epoch_order, vec![4, 2, 0, 1, 3]);
        assert_eq!(t.iteration, 8);
        assert_eq!(t.rng, vec![1, 2, 3, 4]);
        assert_eq!(t.rollbacks, 1);
        assert_eq!(t.best_val_mae.map(f32::to_bits), Some(0.75f32.to_bits()));
        assert_eq!(t.lr.to_bits(), 5e-4f32.to_bits());
        assert_eq!(t.optimizer.t, 8);
        assert!(t.optimizer.m[1].is_none() && t.optimizer.v[1].is_none());
        assert_eq!(
            t.optimizer.m[0].as_ref().map(Array::data),
            Some([1.0, 2.0].as_slice())
        );
        assert_eq!(t.config.batch_size, TrainConfig::default().batch_size);
        std::fs::remove_file(&path).ok();
        Ok(())
    }

    #[test]
    fn tampered_train_state_is_rejected() -> Result<(), CheckpointError> {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Linear::new(2, 2, true, &mut rng);
        let mut ckpt = snapshot(&a, "trainer");
        ckpt.train = Some(sample_train_state());
        let dir = std::env::temp_dir().join("d2stgnn-ckpt-test");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("v3-tampered.json");
        persist(&ckpt, &path)?;
        let json = std::fs::read_to_string(&path)?;
        let tampered = json.replacen("\"rng\":[1,2,3,4]", "\"rng\":[1,2,3,5]", 1);
        assert_ne!(json, tampered, "tamper target not found in JSON");
        std::fs::write(&path, &tampered)?;
        let err = match read(&path) {
            Ok(_) => panic!("tampered train state must be rejected"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("train-state"), "got {err}");
        std::fs::remove_file(&path).ok();
        Ok(())
    }

    #[test]
    fn v2_checkpoint_without_train_key_still_loads() -> Result<(), CheckpointError> {
        let mut rng = StdRng::seed_from_u64(10);
        let a = Linear::new(2, 3, true, &mut rng);
        let mut ckpt = snapshot(&a, "legacy-v2");
        ckpt.version = 2;
        let json =
            serde_json::to_string(&ckpt).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        // A real v2 file has no "train" key at all; strip the null the v3
        // serializer emits.
        let json = json.replacen(",\"train\":null", "", 1);
        assert!(!json.contains("train"), "v2 fixture must lack the field");
        let dir = std::env::temp_dir().join("d2stgnn-ckpt-test");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("v2.json");
        std::fs::write(&path, &json)?;
        let loaded = read(&path)?;
        assert_eq!(loaded.version, 2);
        assert!(loaded.train.is_none());
        load(&a, &path)?;
        std::fs::remove_file(&path).ok();
        Ok(())
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() -> Result<(), CheckpointError> {
        let dir = std::env::temp_dir().join("d2stgnn-ckpt-test");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("atomic.json");
        write_atomic(&path, b"first")?;
        write_atomic(&path, b"second")?;
        assert_eq!(std::fs::read_to_string(&path)?, "second");
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(
            !Path::new(&tmp).exists(),
            "temp file must not survive a successful write"
        );
        std::fs::remove_file(&path).ok();
        Ok(())
    }
}
