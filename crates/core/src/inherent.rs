//! Inherent block (Section 5.2): GRU for short-term dependencies, sinusoidal
//! positional encoding, and multi-head self-attention for long-term
//! dependencies (Eqs. 10–12), with forecast and backcast branches.

use crate::forecast::ForecastBranch;
use d2stgnn_tensor::nn::{positional_encoding, Gru, Linear, Mlp, Module, MultiHeadSelfAttention};
use d2stgnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Configuration slice the inherent block needs.
#[derive(Clone, Copy, Debug)]
pub struct InherentBlockConfig {
    /// Hidden width `d`.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Forecast horizon `T_f`.
    pub tf: usize,
    /// Temporal context of the sliding forecast branch.
    pub kt: usize,
    /// Sliding AR (true) vs direct multi-step (false).
    pub autoregressive: bool,
    /// Include the GRU (`w/o gru` disables).
    pub use_gru: bool,
    /// Include the self-attention layer (`w/o msa` disables).
    pub use_msa: bool,
    /// Dropout on the attention output.
    pub dropout: f32,
}

/// Output of one inherent block.
pub struct InherentOutput {
    /// Hidden state sequence `H^inh` `[B, T_h, N, d]`.
    pub hidden: Tensor,
    /// Forecast hidden states `[B, T_f, N, d]`.
    pub forecast: Tensor,
    /// Backcast reconstruction `[B, T_h, N, d]` (consumed by Eq. 2).
    pub backcast: Tensor,
}

/// The per-node temporal model of the inherent signal.
pub struct InherentBlock {
    cfg: InherentBlockConfig,
    gru: Option<Gru>,
    /// Input projection used when the GRU is ablated away, so the block
    /// still mixes channels before attention.
    input_proj: Option<Linear>,
    msa: Option<MultiHeadSelfAttention>,
    forecast: ForecastBranch,
    backcast: Mlp,
}

impl InherentBlock {
    /// Build the block.
    pub fn new<R: Rng>(cfg: InherentBlockConfig, rng: &mut R) -> Self {
        let d = cfg.hidden;
        let gru = cfg.use_gru.then(|| Gru::new(d, d, rng));
        let input_proj = (!cfg.use_gru).then(|| Linear::new(d, d, true, rng));
        let msa = cfg
            .use_msa
            .then(|| MultiHeadSelfAttention::new(d, cfg.heads, rng));
        let forecast = if cfg.autoregressive {
            ForecastBranch::sliding(cfg.kt, d, rng)
        } else {
            ForecastBranch::direct(cfg.tf, d, rng)
        };
        Self {
            cfg,
            gru,
            input_proj,
            msa,
            forecast,
            backcast: Mlp::new(d, d, d, rng),
        }
    }

    /// Run on the inherent signal `x_inh` `[B, T_h, N, d]`. The RNG drives
    /// dropout and is only consulted when `training` is true.
    pub fn forward(&self, x_inh: &Tensor, training: bool, rng: &mut StdRng) -> InherentOutput {
        let shape = x_inh.shape();
        let (b, th, n, d) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(d, self.cfg.hidden, "hidden width mismatch");

        // Per-node sequences: [B, Th, N, d] -> [B*N, Th, d].
        let seq = x_inh.permute(&[0, 2, 1, 3]).reshape(&[b * n, th, d]);

        // Eq. 10: short-term model.
        let mut h = match (&self.gru, &self.input_proj) {
            (Some(gru), _) => gru.forward(&seq),
            (None, Some(proj)) => proj.forward(&seq).relu(),
            (None, None) => crate::error::violation("one of gru/input_proj always exists"),
        };

        // Eq. 12: positional encoding, then Eq. 11: long-term model with a
        // residual connection around the attention.
        if let Some(msa) = &self.msa {
            let pe_arr = crate::error::require(
                positional_encoding(th, d).reshape(&[1, th, d]),
                "positional encoding reshape",
            );
            let pe = Tensor::constant(pe_arr);
            let with_pe = h.add(&pe.broadcast_to(&[b * n, th, d]));
            let attended = msa
                .forward(&with_pe)
                .dropout(self.cfg.dropout, training, rng);
            h = with_pe.add(&attended);
        }

        let forecast = self
            .forecast
            .forward(&h, self.cfg.tf)
            .reshape(&[b, n, self.cfg.tf, d])
            .permute(&[0, 2, 1, 3]);
        let hidden = h.reshape(&[b, n, th, d]).permute(&[0, 2, 1, 3]);
        let backcast = self.backcast.forward(&hidden);

        InherentOutput {
            hidden,
            forecast,
            backcast,
        }
    }
}

impl Module for InherentBlock {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = Vec::new();
        if let Some(g) = &self.gru {
            p.extend(g.parameters());
        }
        if let Some(l) = &self.input_proj {
            p.extend(l.parameters());
        }
        if let Some(m) = &self.msa {
            p.extend(m.parameters());
        }
        p.extend(self.forecast.parameters());
        p.extend(self.backcast.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2stgnn_tensor::Array;
    use rand::SeedableRng;

    fn cfg() -> InherentBlockConfig {
        InherentBlockConfig {
            hidden: 8,
            heads: 2,
            tf: 4,
            kt: 2,
            autoregressive: true,
            use_gru: true,
            use_msa: true,
            dropout: 0.0,
        }
    }

    #[test]
    fn output_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let block = InherentBlock::new(cfg(), &mut rng);
        let x = Tensor::constant(Array::randn(&[2, 6, 5, 8], &mut rng));
        let out = block.forward(&x, false, &mut rng);
        assert_eq!(out.hidden.shape(), vec![2, 6, 5, 8]);
        assert_eq!(out.forecast.shape(), vec![2, 4, 5, 8]);
        assert_eq!(out.backcast.shape(), vec![2, 6, 5, 8]);
    }

    #[test]
    fn ablations_change_parameter_sets() {
        let mut rng = StdRng::seed_from_u64(0);
        let full = InherentBlock::new(cfg(), &mut rng);
        let mut no_gru = cfg();
        no_gru.use_gru = false;
        let no_gru = InherentBlock::new(no_gru, &mut rng);
        let mut no_msa = cfg();
        no_msa.use_msa = false;
        let no_msa = InherentBlock::new(no_msa, &mut rng);
        assert!(no_gru.num_parameters() < full.num_parameters());
        assert!(no_msa.num_parameters() < full.num_parameters());
        // Both ablated blocks still run.
        let x = Tensor::constant(Array::randn(&[1, 6, 3, 8], &mut rng));
        assert_eq!(
            no_gru.forward(&x, false, &mut rng).hidden.shape(),
            vec![1, 6, 3, 8]
        );
        assert_eq!(
            no_msa.forward(&x, false, &mut rng).hidden.shape(),
            vec![1, 6, 3, 8]
        );
    }

    #[test]
    fn nodes_are_independent() {
        // The inherent model is per-node: perturbing node 0's input must not
        // change node 1's hidden state.
        let mut rng = StdRng::seed_from_u64(1);
        let block = InherentBlock::new(cfg(), &mut rng);
        let base = Array::randn(&[1, 5, 2, 8], &mut rng);
        let mut bumped = base.clone();
        for t in 0..5 {
            for j in 0..8 {
                // node 0 features
                let idx = (t * 2) * 8 + j;
                bumped.data_mut()[idx] += 4.0;
            }
        }
        let h0 = block
            .forward(&Tensor::constant(base), false, &mut rng)
            .hidden
            .value();
        let h1 = block
            .forward(&Tensor::constant(bumped), false, &mut rng)
            .hidden
            .value();
        for t in 0..5 {
            for j in 0..8 {
                assert_eq!(h0.at(&[0, t, 1, j]), h1.at(&[0, t, 1, j]));
            }
        }
    }

    #[test]
    fn long_range_influence_via_msa() {
        // With MSA, input at t=0 influences the hidden state at the last step
        // beyond what GRU decay alone would carry; verify influence exists.
        let mut rng = StdRng::seed_from_u64(2);
        let block = InherentBlock::new(cfg(), &mut rng);
        let base = Array::randn(&[1, 8, 1, 8], &mut rng);
        let mut bumped = base.clone();
        for j in 0..8 {
            bumped.data_mut()[j] += 3.0; // t=0
        }
        let h0 = block
            .forward(&Tensor::constant(base), false, &mut rng)
            .hidden
            .value();
        let h1 = block
            .forward(&Tensor::constant(bumped), false, &mut rng)
            .hidden
            .value();
        let diff: f32 = (0..8)
            .map(|j| (h0.at(&[0, 7, 0, j]) - h1.at(&[0, 7, 0, j])).abs())
            .sum();
        assert!(diff > 1e-5, "no long-range influence: {diff}");
    }

    #[test]
    fn gradients_flow() {
        let mut rng = StdRng::seed_from_u64(3);
        let block = InherentBlock::new(cfg(), &mut rng);
        let x = Tensor::parameter(Array::randn(&[2, 5, 3, 8], &mut rng));
        let out = block.forward(&x, false, &mut rng);
        out.hidden
            .sum_all()
            .add(&out.forecast.sum_all())
            .add(&out.backcast.sum_all())
            .backward();
        assert!(x.grad().is_some());
        for (i, p) in block.parameters().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} missing grad");
        }
    }
}
