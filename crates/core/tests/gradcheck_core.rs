//! Finite-difference gradient checks for the model's two decoupled blocks:
//! one diffusion-convolution step (Eqs. 5–9) and one inherent block
//! (Eqs. 10–12), each checked through all three output branches.

use d2stgnn_core::diffusion::{DiffusionBlock, DiffusionBlockConfig};
use d2stgnn_core::graphs::{GraphContext, Transitions};
use d2stgnn_core::inherent::{InherentBlock, InherentBlockConfig};
use d2stgnn_data::{simulate, SimulatorConfig};
use d2stgnn_tensor::nn::Module;
use d2stgnn_tensor::testing::{gradcheck, gradcheck_module};
use d2stgnn_tensor::{Array, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOL: f32 = 1e-2;
const PROBES: usize = 4;

fn graph_context() -> GraphContext {
    let mut sim = SimulatorConfig::tiny();
    sim.num_nodes = 4;
    sim.num_steps = 64;
    sim.knn = 2;
    GraphContext::new(&simulate(&sim).network)
}

#[test]
fn gradcheck_diffusion_step() {
    let mut rng = StdRng::seed_from_u64(31);
    let ctx = graph_context();
    let (b, th, n, d) = (1, 4, ctx.num_nodes(), 4);
    let cfg = DiffusionBlockConfig {
        ks: 2,
        kt: 2,
        hidden: d,
        tf: 3,
        autoregressive: false,
        use_adaptive: false,
    };
    let block = DiffusionBlock::new(cfg, &mut rng);
    let transitions = Transitions::Static {
        p_f: ctx.p_f().clone(),
        p_b: ctx.p_b().clone(),
    };
    let x = Tensor::constant(Array::randn(&[b, th, n, d], &mut rng).map(|v| v * 0.5));

    // Parameters: all three branches contribute to the scalar.
    gradcheck_module(
        || {
            let out = block.forward(&ctx, &x, &transitions, None);
            out.hidden
                .square()
                .sum_all()
                .add(&out.forecast.square().sum_all())
                .add(&out.backcast.square().sum_all())
        },
        &block.parameters(),
        PROBES,
        TOL,
    );

    // Input gradient through the spatial-temporal convolution.
    gradcheck(
        |v| {
            let out = block.forward(&ctx, &v[0], &transitions, None);
            out.hidden
                .square()
                .sum_all()
                .add(&out.forecast.square().sum_all())
                .add(&out.backcast.square().sum_all())
        },
        &[&[b, th, n, d]],
        &mut rng,
        TOL,
    );
}

#[test]
fn gradcheck_diffusion_step_with_adaptive_matrix() {
    let mut rng = StdRng::seed_from_u64(5);
    let ctx = graph_context();
    let (b, th, n, d) = (1, 3, ctx.num_nodes(), 4);
    let cfg = DiffusionBlockConfig {
        ks: 2,
        kt: 2,
        hidden: d,
        tf: 2,
        autoregressive: true,
        use_adaptive: true,
    };
    let block = DiffusionBlock::new(cfg, &mut rng);
    let transitions = Transitions::Static {
        p_f: ctx.p_f().clone(),
        p_b: ctx.p_b().clone(),
    };
    // A fixed row-stochastic-ish adaptive matrix.
    let adaptive = Tensor::constant(Array::randn(&[n, n], &mut rng).map(|v| (v * 0.2).abs()));
    let x = Tensor::constant(Array::randn(&[b, th, n, d], &mut rng).map(|v| v * 0.5));
    gradcheck_module(
        || {
            let out = block.forward(&ctx, &x, &transitions, Some(&adaptive));
            out.hidden
                .square()
                .sum_all()
                .add(&out.forecast.square().sum_all())
        },
        &block.parameters(),
        PROBES,
        TOL,
    );
}

#[test]
fn gradcheck_inherent_block() {
    let mut rng = StdRng::seed_from_u64(9);
    let (b, th, n, d) = (1, 4, 3, 4);
    let cfg = InherentBlockConfig {
        hidden: d,
        heads: 2,
        tf: 3,
        kt: 2,
        autoregressive: false,
        use_gru: true,
        use_msa: true,
        dropout: 0.0,
    };
    let block = InherentBlock::new(cfg, &mut rng);
    let x = Tensor::constant(Array::randn(&[b, th, n, d], &mut rng).map(|v| v * 0.5));

    gradcheck_module(
        || {
            let mut fwd_rng = StdRng::seed_from_u64(0);
            let out = block.forward(&x, false, &mut fwd_rng);
            out.hidden
                .square()
                .sum_all()
                .add(&out.forecast.square().sum_all())
                .add(&out.backcast.square().sum_all())
        },
        &block.parameters(),
        PROBES,
        TOL,
    );

    gradcheck(
        |v| {
            let mut fwd_rng = StdRng::seed_from_u64(0);
            let out = block.forward(&v[0], false, &mut fwd_rng);
            out.hidden
                .square()
                .sum_all()
                .add(&out.forecast.square().sum_all())
                .add(&out.backcast.square().sum_all())
        },
        &[&[b, th, n, d]],
        &mut rng,
        TOL,
    );
}
