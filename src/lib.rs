//! # d2stgnn
//!
//! A from-scratch Rust reproduction of **"Decoupled Dynamic Spatial-Temporal
//! Graph Neural Network for Traffic Forecasting"** (Shao et al.,
//! PVLDB 15(11), 2022) — the D²STGNN model, its Decoupled Spatial-Temporal
//! Framework, the baselines it is compared against, and a synthetic traffic
//! substrate standing in for the METR-LA / PEMS datasets.
//!
//! This facade re-exports the public API of the workspace crates:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`tensor`] | N-d arrays, autograd, NN layers, optimizers, losses |
//! | [`graph`] | traffic networks, transition-matrix algebra |
//! | [`data`] | synthetic datasets, windows, scalers, metrics |
//! | [`model`] | DSTF + D²STGNN + trainer (the paper's contribution) |
//! | [`baselines`] | HA, VAR, SVR, FC-LSTM, DCRNN, Graph WaveNet, STGCN |
//! | [`serve`] | model registry, micro-batching inference server, fallback |
//!
//! ## Quickstart
//!
//! ```
//! use d2stgnn::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Simulate a small traffic network and train a tiny D²STGNN on it.
//! let mut sim = SimulatorConfig::tiny();
//! sim.num_nodes = 6;
//! sim.num_steps = 288;
//! let data = WindowedDataset::new(simulate(&sim), 12, 12, (0.6, 0.2, 0.2));
//!
//! let mut cfg = D2stgnnConfig::small(6);
//! cfg.layers = 1;
//! cfg.hidden = 8;
//! cfg.emb_dim = 4;
//! cfg.heads = 2;
//! let mut rng = StdRng::seed_from_u64(0);
//! let model = D2stgnn::new(cfg, &data.data().network.clone(), &mut rng);
//!
//! let trainer = Trainer::new(TrainConfig { max_epochs: 1, ..TrainConfig::default() });
//! let report = trainer.train(&model, &data).expect("training failed");
//! assert!(report.best_val_mae.is_finite());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use d2stgnn_baselines as baselines;
pub use d2stgnn_core as model;
pub use d2stgnn_data as data;
pub use d2stgnn_graph as graph;
pub use d2stgnn_httpd as httpd;
pub use d2stgnn_serve as serve;
pub use d2stgnn_tensor as tensor;

/// Everything needed for typical use in one import.
pub mod prelude {
    pub use d2stgnn_baselines::{
        evaluate_classical, ClassicalForecaster, Dcrnn, FcLstm, GraphWaveNet, HistoricalAverage,
        LinearSvr, Stgcn, VectorAutoRegression,
    };
    pub use d2stgnn_core::{
        checkpoint, BlockOrder, Checkpoint, D2stgnn, D2stgnnConfig, EvalResult, TrafficModel,
        TrainConfig, TrainError, TrainReport, TrainState, Trainer,
    };
    pub use d2stgnn_data::{
        simulate, Batch, DatasetId, Metrics, Profile, SignalKind, SimulatorConfig, Split,
        StandardScaler, TrafficData, WindowedDataset,
    };
    pub use d2stgnn_graph::{transition, TrafficNetwork};
    pub use d2stgnn_httpd::{HttpServer, HttpdConfig, QuotaConfig, RouteKey, ShardRouter};
    pub use d2stgnn_serve::{
        Forecast, InferRequest, ModelRegistry, ServeConfig, ServeError, Server, ServerStats,
    };
    pub use d2stgnn_tensor::{nn::Module, Array, Tensor};
}
