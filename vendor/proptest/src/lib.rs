//! Offline drop-in replacement for the subset of `proptest` this workspace
//! uses: the `proptest! {}` macro with `#![proptest_config(...)]`, range and
//! `prop::collection::vec` strategies, and `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! No shrinking: a failing case reports its seed-derived case index so the
//! deterministic generator reproduces it on re-run. Generation is seeded from
//! the test's `file!()`/`line!()`, so runs are reproducible without any
//! persistence files.

use std::ops::Range;

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic generator backing strategies (xorshift64*).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test's source location.
    pub fn deterministic(file: &str, line: u32) -> Self {
        // FNV-1a over the location, so each test gets its own stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in file.bytes().chain(line.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            state: h.max(1), // xorshift must not start at 0
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values (mirrors `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy for `Vec`s with random length (see [`prop::collection::vec`]).
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub mod prop {
    //! Namespace mirror of `proptest::prop`.

    pub mod collection {
        //! Collection strategies.

        use super::super::{Strategy, VecStrategy};
        use std::ops::Range;

        /// Vectors of `element` values with a length drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

pub mod prelude {
    //! Mirror of `proptest::prelude`.

    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Define property tests (shim of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(file!(), line!());
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "proptest {} failed on case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __msg
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ::std::default::Default::default(); $($rest)*);
    };
}

/// Assert inside `proptest!` bodies; failures abort only the current case
/// closure (shim of `proptest::prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assert inside `proptest!` bodies (shim of
/// `proptest::prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "{} != {}: {:?} vs {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, f in -2.0f32..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f), "f = {}", f);
        }

        #[test]
        fn vec_strategy_lengths(v in prop::collection::vec(0.0f32..1.0, 1..16)) {
            prop_assert!(!v.is_empty() && v.len() < 16);
            for item in &v {
                prop_assert!((0.0..1.0).contains(item));
            }
        }

        #[test]
        fn eq_assert_works(x in 0u64..100) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn deterministic_rng_is_reproducible() {
        let mut a = crate::TestRng::deterministic("x.rs", 3);
        let mut b = crate::TestRng::deterministic("x.rs", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("x.rs", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
