//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses. The build container has no access to crates.io, so the
//! workspace vendors a small, dependency-free implementation instead:
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, [`seq::SliceRandom::shuffle`], and
//! [`distributions::Distribution`].
//!
//! Numeric streams differ from upstream `rand`; everything in this repository
//! that needs reproducibility only relies on *self*-consistency of seeds.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a single `u64` (expanded internally).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f32`/`f64` uniform in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Sample uniformly from a half-open range `lo..hi`.
    ///
    /// # Panics
    /// If the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample in `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is negligible for the spans used here.
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded through SplitMix64 like upstream's `seed_from_u64`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// Export the generator's raw state words (checkpointing). Feeding
        /// them back through [`StdRng::from_state`] resumes the exact stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from [`StdRng::state`] output. The all-zero
        /// state (a xoshiro fixed point) is nudged exactly like
        /// [`SeedableRng::from_seed`] does, so round-trips are lossless for
        /// every state the generator can actually reach.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return Self {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Distribution sampling in the style of `rand::distributions`.

    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform `[0, 1)` floats, full-range
    /// integers, fair booleans.
    pub struct Standard;

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod seq {
    //! Slice utilities in the style of `rand::seq`.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let v = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&v));
            sum += v as f64;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let v = rng.gen_range(5..9);
            assert!((5..9).contains(&v));
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn state_roundtrip_resumes_exact_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
