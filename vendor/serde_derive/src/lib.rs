//! Offline drop-in replacement for `serde_derive`, written directly against
//! `proc_macro` (no `syn`/`quote` available in this container).
//!
//! Supports what the workspace actually derives:
//! - non-generic structs with named fields,
//! - non-generic enums with unit, newtype, and struct variants,
//! - no `#[serde(...)]` attributes.
//!
//! Structs serialize to objects, unit variants to strings, newtype/struct
//! variants to single-key objects (serde's externally-tagged default), so the
//! JSON written by the real serde_json for these shapes parses back
//! unchanged. Missing struct fields deserialize as `null`, which lets
//! `Option` fields default to `None` — the hook used for checkpoint
//! format-version back-compat.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Input {
    name: String,
    data: Data,
}

enum Data {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

/// Advance past one `#[...]` attribute (including doc comments, which reach
/// us already desugared to `#[doc = "..."]`). Returns the new cursor.
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() != '#' {
            break;
        }
        match tokens.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => i += 2,
            _ => panic!("serde_derive shim: malformed attribute"),
        }
    }
    i
}

/// Advance past `pub` / `pub(...)` visibility. Returns the new cursor.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_visibility(&tokens, skip_attributes(&tokens, 0));

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            id.to_string()
        }
        other => panic!("serde_derive shim: expected struct or enum, found {other:?}"),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other:?}"),
    };
    i += 1;

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!("serde_derive shim: `{name}` must be a non-generic brace struct/enum"),
    };

    let data = if kind == "struct" {
        Data::Struct(parse_named_fields(body))
    } else {
        Data::Enum(parse_variants(body))
    };
    Input { name, data }
}

/// Parse `name: Type, ...` out of a brace body, returning the field names.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_visibility(&tokens, skip_attributes(&tokens, i));
        let fname = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after `{fname}`, found {other:?}"),
        }
        // Consume the type: everything until a comma outside angle brackets.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(fname);
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = g
                    .stream()
                    .into_iter()
                    .filter(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ','))
                    .count()
                    + 1;
                assert!(
                    arity == 1,
                    "serde_derive shim: tuple variant `{name}` must have exactly one field"
                );
                i += 1;
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => panic!("serde_derive shim: expected `,` after variant, found {other:?}"),
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const SER_ERR: &str = "<__S::Error as ::serde::ser::Error>::custom";
const DE_ERR: &str = "<__D::Error as ::serde::de::Error>::custom";

/// `fields -> Vec<(String, Value)>` builder statements; `access` maps a field
/// name to the expression that borrows it (e.g. `&self.f` or `__f`).
fn gen_push_fields(out: &mut String, fields: &[String], access: impl Fn(&str) -> String) {
    out.push_str(
        "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        out.push_str(&format!(
            "__fields.push((::std::string::String::from(\"{f}\"), \
             ::serde::ser::to_value({access}).map_err({SER_ERR})?));\n",
            access = access(f),
        ));
    }
}

/// Expression extracting field `f` of type-checked target out of a mutable
/// `Vec<(String, Value)>` named `__obj` (missing fields become `Null`).
fn gen_take_field(ctx: &str, f: &str) -> String {
    format!(
        "{{ let __v = match __obj.iter().position(|(__k, _)| __k == \"{f}\") {{\
             ::std::option::Option::Some(__i) => __obj.swap_remove(__i).1,\
             ::std::option::Option::None => ::serde::Value::Null,\
         }};\
         ::serde::de::from_value(__v)\
             .map_err(|__e| {DE_ERR}(::std::format!(\"{ctx}.{f}: {{}}\", __e)))? }}"
    )
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.data {
        Data::Struct(fields) => {
            gen_push_fields(&mut body, fields, |f| format!("&self.{f}"));
            body.push_str("serializer.serialize_value(::serde::Value::Object(__fields))\n");
        }
        Data::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => body.push_str(&format!(
                        "{name}::{vname} => serializer.serialize_value(\
                         ::serde::Value::String(::std::string::String::from(\"{vname}\"))),\n"
                    )),
                    VariantKind::Newtype => body.push_str(&format!(
                        "{name}::{vname}(__f0) => {{\
                           let __inner = ::serde::ser::to_value(__f0).map_err({SER_ERR})?;\
                           serializer.serialize_value(::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), __inner)]))\
                         }}\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let pattern = fields.join(", ");
                        let mut inner = String::new();
                        gen_push_fields(&mut inner, fields, |f| f.to_string());
                        body.push_str(&format!(
                            "{name}::{vname} {{ {pattern} }} => {{\
                               {inner}\
                               serializer.serialize_value(::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                  ::serde::Value::Object(__fields))]))\
                             }}\n"
                        ));
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, clippy::all)]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::ser::Serializer>(&self, serializer: __S)\
                 -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    body.push_str("let __value = ::serde::de::Deserializer::take_value(deserializer)?;\n");
    match &input.data {
        Data::Struct(fields) => {
            body.push_str(&format!(
                "let mut __obj = match __value {{\
                   ::serde::Value::Object(__m) => __m,\
                   __other => return ::std::result::Result::Err({DE_ERR}(::std::format!(\
                     \"{name}: expected object, got {{}}\", __other.kind()))),\
                 }};\n"
            ));
            body.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                body.push_str(&format!("{f}: {},\n", gen_take_field(name, f)));
            }
            body.push_str("})\n");
        }
        Data::Enum(variants) => {
            body.push_str("match __value {\n");
            // Unit variants arrive as plain strings.
            body.push_str("::serde::Value::String(__s) => match __s.as_str() {\n");
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let vname = &v.name;
                    body.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    ));
                }
            }
            body.push_str(&format!(
                "__other => ::std::result::Result::Err({DE_ERR}(::std::format!(\
                   \"unknown {name} variant {{}}\", __other))),\n\
                 }},\n"
            ));
            // Data-carrying variants arrive as single-key objects.
            body.push_str(
                "::serde::Value::Object(mut __m) if __m.len() == 1 => {\
                   let (__k, __v) = __m.remove(0);\
                   match __k.as_str() {\n",
            );
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Newtype => body.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                           ::serde::de::from_value(__v).map_err(|__e| {DE_ERR}(\
                             ::std::format!(\"{name}::{vname}: {{}}\", __e)))?)),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let mut arms = String::new();
                        for f in fields {
                            arms.push_str(&format!(
                                "{f}: {},\n",
                                gen_take_field(&format!("{name}::{vname}"), f)
                            ));
                        }
                        body.push_str(&format!(
                            "\"{vname}\" => {{\
                               let mut __obj = match __v {{\
                                 ::serde::Value::Object(__m) => __m,\
                                 __other => return ::std::result::Result::Err({DE_ERR}(\
                                   ::std::format!(\"{name}::{vname}: expected object, got {{}}\",\
                                   __other.kind()))),\
                               }};\
                               ::std::result::Result::Ok({name}::{vname} {{ {arms} }})\
                             }}\n"
                        ));
                    }
                }
            }
            body.push_str(&format!(
                "__other => ::std::result::Result::Err({DE_ERR}(::std::format!(\
                   \"unknown {name} variant {{}}\", __other))),\n\
                 }}\n}},\n"
            ));
            body.push_str(&format!(
                "__other => ::std::result::Result::Err({DE_ERR}(::std::format!(\
                   \"{name}: expected string or single-key object, got {{}}\", __other.kind()))),\n\
                 }}\n"
            ));
        }
    }
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, clippy::all)]\n\
         impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::de::Deserializer<'de>>(deserializer: __D)\
                 -> ::std::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

/// Derive `serde::Serialize` (shim).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive shim: generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive shim: generated invalid Deserialize impl")
}
