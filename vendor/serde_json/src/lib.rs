//! Offline drop-in replacement for the subset of `serde_json` this workspace
//! uses: [`to_string`], [`to_string_pretty`], and [`from_str`], backed by the
//! shim `serde`'s in-memory [`Value`] tree.

pub use serde::Value;

use serde::{Number, Serialize};

/// JSON serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = serde::ser::to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_value(&tree, None, 0, &mut out);
    Ok(out)
}

/// Serialize a value to human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = serde::ser::to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_value(&tree, Some(2), 0, &mut out);
    Ok(out)
}

fn write_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_value(value: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(Number::PosInt(v)) => out.push_str(&v.to_string()),
        Value::Number(Number::NegInt(v)) => out.push_str(&v.to_string()),
        Value::Number(Number::Float(v)) => {
            if v.is_finite() {
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(indent, level + 1, out);
                write_value(item, indent, level + 1, out);
            }
            write_indent(indent, level, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(indent, level + 1, out);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, level + 1, out);
            }
            write_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Deserialize a value from a JSON string.
pub fn from_str<T: serde::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    serde::de::from_value(value).map_err(|e| Error(e.to_string()))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped runs wholesale.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&3usize).unwrap(), "3");
        assert_eq!(from_str::<usize>("3").unwrap(), 3);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<f32>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&"a\"b\\c\nd").unwrap(), r#""a\"b\\c\nd""#);
        assert_eq!(from_str::<String>(r#""a\"b\\c\nd""#).unwrap(), "a\"b\\c\nd");
    }

    #[test]
    fn round_trips_u64_precision() {
        // Values above 2^53 must not pass through f64.
        let big = u64::MAX - 1;
        assert_eq!(from_str::<u64>(&to_string(&big).unwrap()).unwrap(), big);
    }

    #[test]
    fn round_trips_f32_exactly() {
        for v in [0.1f32, -3.25e-8, 7_000_000.0, f32::MIN_POSITIVE] {
            let back: f32 = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v}");
        }
    }

    #[test]
    fn round_trips_containers() {
        let v = vec![(1usize, 2.5f32), (3, -4.0)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2.5],[3,-4]]");
        let back: Vec<(usize, f32)> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("9").unwrap(), Some(9));
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u32, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u32>("[1,").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<u32>("{\"a\":}").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
    }
}
