//! Serialization traits, mirroring `serde::ser`.

use crate::value::{Value, ValueError};

/// Error trait every serializer error implements (mirrors `serde::ser::Error`).
pub trait Error: Sized + std::fmt::Display {
    /// Build an error from any displayable message.
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

/// A data format that can accept a [`Value`] tree.
pub trait Serializer: Sized {
    /// Output on success.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Consume a finished value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A type that can describe itself to any [`Serializer`].
pub trait Serialize {
    /// Serialize `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Serializer producing the in-memory [`Value`] tree; the backend used by
/// derived impls to convert nested fields.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}
