//! Deserialization traits, mirroring `serde::de`.

use crate::value::{Value, ValueError};

/// Error trait every deserializer error implements (mirrors
/// `serde::de::Error`).
pub trait Error: Sized + std::fmt::Display {
    /// Build an error from any displayable message.
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

/// A data format that can yield a [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Surrender the parsed value tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserialize `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Owned deserialization, mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Deserializer over an in-memory [`Value`] tree; the backend used by derived
/// impls to convert nested fields.
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn take_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}

/// Build any deserializable type from a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer(value))
}
