//! Offline drop-in replacement for the subset of `serde` this workspace uses.
//!
//! The build container cannot reach crates.io, so instead of the real serde's
//! visitor-based data model this shim routes everything through one concrete
//! in-memory tree, [`Value`]. The public trait *signatures* match serde's
//! (`Serialize::serialize<S: Serializer>`, `Deserialize::deserialize<D:
//! Deserializer<'de>>`, `ser::Error` / `de::Error` with `custom`), so code
//! written against idiomatic serde — including hand-written impls and the
//! `#[derive(Serialize, Deserialize)]` macros from the sibling
//! `serde_derive` shim — compiles unchanged.

pub mod de;
pub mod ser;

mod impls;
mod value;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};
pub use value::{Number, Value, ValueError};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
