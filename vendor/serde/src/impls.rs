//! `Serialize` / `Deserialize` impls for the primitive and container types
//! the workspace serializes.

use crate::de::{self, Deserialize, Deserializer, Error as DeError};
use crate::ser::{self, Error as SerError, Serialize, Serializer};
use crate::value::{Number, Value};

// ---------------------------------------------------------------------------
// Integers
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Number(Number::PosInt(*self as u64)))
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.take_value()? {
                    Value::Number(Number::PosInt(v)) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom(format!(
                            "integer {v} out of range for {}", stringify!($t)))),
                    other => Err(D::Error::custom(format!(
                        "expected unsigned integer, got {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                let num = if v >= 0 {
                    Number::PosInt(v as u64)
                } else {
                    Number::NegInt(v)
                };
                serializer.serialize_value(Value::Number(num))
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let wide: i128 = match deserializer.take_value()? {
                    Value::Number(Number::PosInt(v)) => v as i128,
                    Value::Number(Number::NegInt(v)) => v as i128,
                    other => {
                        return Err(D::Error::custom(format!(
                            "expected integer, got {}", other.kind())))
                    }
                };
                <$t>::try_from(wide).map_err(|_| D::Error::custom(format!(
                    "integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// Floats — non-finite values serialize as null (matching serde_json) and
// null deserializes back to NaN.
// ---------------------------------------------------------------------------

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as f64;
                let value = if v.is_finite() {
                    Value::Number(Number::Float(v))
                } else {
                    Value::Null
                };
                serializer.serialize_value(value)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.take_value()? {
                    Value::Number(Number::Float(v)) => Ok(v as $t),
                    Value::Number(Number::PosInt(v)) => Ok(v as $t),
                    Value::Number(Number::NegInt(v)) => Ok(v as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(D::Error::custom(format!(
                        "expected number, got {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

// ---------------------------------------------------------------------------
// bool / strings
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::String(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::String(self.clone()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::String(s) => Ok(s),
            other => Err(D::Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut items = Vec::with_capacity(self.len());
        for item in self {
            items.push(ser::to_value(item).map_err(S::Error::custom)?);
        }
        serializer.serialize_value(Value::Array(items))
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Array(items) => items
                .into_iter()
                .enumerate()
                .map(|(i, v)| {
                    de::from_value(v).map_err(|e| D::Error::custom(format!("array index {i}: {e}")))
                })
                .collect(),
            other => Err(D::Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut items = Vec::with_capacity(self.len());
        for item in self {
            items.push(ser::to_value(item).map_err(S::Error::custom)?);
        }
        serializer.serialize_value(Value::Array(items))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(serializer),
            None => serializer.serialize_value(Value::Null),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            value => de::from_value(value).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(ser::to_value(&self.$idx).map_err(S::Error::custom)?),+
                ];
                serializer.serialize_value(Value::Array(items))
            }
        }

        impl<'de, $($name: for<'a> Deserialize<'a>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                const ARITY: usize = [$($idx),+].len();
                match deserializer.take_value()? {
                    Value::Array(items) if items.len() == ARITY => {
                        let mut iter = items.into_iter();
                        Ok((
                            $({
                                let _ = $idx;
                                de::from_value(iter.next().expect("length checked"))
                                    .map_err(<__D::Error as DeError>::custom)?
                            },)+
                        ))
                    }
                    Value::Array(items) => Err(<__D::Error as DeError>::custom(format!(
                        "expected array of length {ARITY}, got {}", items.len()))),
                    other => Err(<__D::Error as DeError>::custom(format!(
                        "expected array, got {}", other.kind()))),
                }
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_value()
    }
}
