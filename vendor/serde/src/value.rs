//! The concrete data model every serializer/deserializer in this shim
//! round-trips through.

/// A JSON-like value tree. Object keys keep insertion order so output is
/// stable across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null` (also the marker for absent struct fields on deserialize).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any numeric value.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// Key/value pairs in insertion order.
    Object(Vec<(String, Value)>),
}

/// Numeric payload preserving integer fidelity (a `u64` checksum must not go
/// through `f64`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Non-negative integers.
    PosInt(u64),
    /// Negative integers.
    NegInt(i64),
    /// Everything else.
    Float(f64),
}

impl Value {
    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// The error type used by the in-memory [`Value`] serializer/deserializer.
#[derive(Clone, Debug)]
pub struct ValueError(pub String);

impl std::fmt::Display for ValueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl crate::ser::Error for ValueError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl crate::de::Error for ValueError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}
