//! Offline drop-in replacement for the subset of `criterion` this workspace
//! uses. Benchmarks compile and run with `cargo bench`, timing each target
//! with a simple warmup + sampled-mean loop and printing one line per
//! benchmark; there is no statistical analysis, HTML report, or baseline
//! comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmark body (re-export of
/// `std::hint::black_box`).
pub use std::hint::black_box;

/// Top-level benchmark driver (shim of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(id);
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks (shim of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark in this group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(&mut self, id: I, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
    }

    /// Run one benchmark parameterized by an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.0));
    }

    /// Finish the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark (shim of
/// `criterion::BenchmarkId`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify a benchmark by its parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self(parameter.to_string())
    }

    /// Identify a benchmark by function name and parameter value.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        Self(format!("{function}/{parameter}"))
    }
}

/// Times a closure (shim of `criterion::Bencher`).
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, running it once per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: run until ~50ms or 3 iterations, whichever is later.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u32;
        while warmup_iters < 3 || warmup_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1000 {
                break;
            }
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("bench {id:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        let median = sorted[sorted.len() / 2];
        println!(
            "bench {id:<50} mean {:>12?}  median {:>12?}  ({} samples)",
            mean,
            median,
            sorted.len()
        );
    }
}

/// Declare a group of benchmark functions (shim of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = ::std::default::Default::default();
            targets = $($target),+
        );
    };
}

/// Generate a `main` running benchmark groups (shim of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
