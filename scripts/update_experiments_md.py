#!/usr/bin/env python3
"""Inject the experiment outputs under target/experiments/logs into the
placeholder markers of EXPERIMENTS.md.

Usage: python3 scripts/update_experiments_md.py
"""
import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent
LOGS = ROOT / "target" / "experiments" / "logs"
MD = ROOT / "EXPERIMENTS.md"

SECTIONS = {
    "TABLE3_RESULTS": "table3.out",
    "TABLE4_RESULTS": "table4.out",
    "TABLE5_RESULTS": "table5.out",
    "FIG6_RESULTS": "fig6.out",
    "FIG7_RESULTS": "fig7.out",
    "FIG8_RESULTS": "fig8.out",
}


def main() -> None:
    text = MD.read_text()
    for marker, filename in SECTIONS.items():
        path = LOGS / filename
        content = path.read_text().strip() if path.exists() else ""
        if not content:
            # Fall back to the --fast smoke output when the scaled run was
            # cut short (noted inline).
            fast = LOGS / filename.replace(".out", "_fast.out")
            if fast.exists() and fast.read_text().strip():
                content = (
                    "[NOTE: scaled run not completed in the compute budget; "
                    "this is the --fast smoke profile]\n"
                    + fast.read_text().strip()
                )
        if not content:
            continue
        block = f"<!-- {marker} -->\n```text\n{content}\n```\n<!-- /{marker} -->"
        # Replace either the bare marker or a previously injected block.
        injected = re.compile(
            rf"<!-- {marker} -->.*?<!-- /{marker} -->", re.DOTALL
        )
        if injected.search(text):
            text = injected.sub(block, text)
        else:
            text = text.replace(f"<!-- {marker} -->", block)
    MD.write_text(text)
    print("EXPERIMENTS.md updated")


if __name__ == "__main__":
    main()
