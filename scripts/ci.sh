#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, release build, full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> xlint (workspace static analysis, ratcheted against xlint_report.json)"
cargo test -q -p xlint
mkdir -p target/experiments
XLINT_START=$(date +%s%N)
cargo run -q --release -p xlint -- --format json > target/experiments/xlint_report.json
XLINT_MS=$(( ($(date +%s%N) - XLINT_START) / 1000000 ))
# Ratchet gate: a clean run rewrites the committed baseline in place when
# findings were fixed (auto-shrink); any resulting diff must be committed.
git diff --exit-code xlint_report.json || {
    echo "xlint baseline shrank (fixed findings): commit the updated xlint_report.json" >&2
    exit 1
}
# Wall-clock budget: the analysis must stay cheap enough to run on every push.
# The budget includes the cargo-run wrapper; the analysis itself reports its
# own elapsed_ms inside the JSON artifact.
if [ "$XLINT_MS" -gt 60000 ]; then
    echo "xlint took ${XLINT_MS} ms, over the 60 s budget" >&2
    exit 1
fi
echo "xlint OK in ${XLINT_MS} ms (artifact: target/experiments/xlint_report.json)"

echo "==> cargo test -q --features sanitize (autograd + lock-order sanitizers)"
cargo test -q --features sanitize
cargo test -q -p d2stgnn-tensor --features sanitize
cargo test -q -p d2stgnn-serve --features sanitize

echo "==> telemetry layer: tests with the obsv feature off and on"
cargo test -q -p d2stgnn-obsv
cargo test -q -p d2stgnn-obsv --features enabled
cargo test -q -p d2stgnn-tensor --features obsv
cargo test -q -p d2stgnn-core --features obsv
cargo test -q -p d2stgnn-serve --features obsv
cargo test -q --features obsv
cargo clippy -p d2stgnn-obsv --all-targets --features enabled -- -D warnings
cargo clippy -p d2stgnn-bench --all-targets --features obsv -- -D warnings

echo "==> obsv smoke run (tiny train + served batch + HTTP forecast trace)"
cargo run -q -p d2stgnn-bench --features obsv --bin obsv_smoke

echo "==> resume fault-injection smoke (SIGKILL mid-epoch, bit-identical resume)"
cargo test -q --test resume_e2e -- --exact sigkill_mid_epoch_then_resume_is_bit_identical

echo "==> tensor kernel bench smoke (release, schema + simd/parallel speedup floors)"
cargo run -q --release -p d2stgnn-bench --bin tensor_kernels -- --fast
python3 - <<'EOF'
import json

def load(path):
    doc = json.load(open(path))
    assert doc["schema"] == "d2stgnn-bench-v1", doc["schema"]
    assert doc["name"] == "tensor_kernels"
    cfg = doc["config"]
    res = doc["results"]
    cfg = json.loads(cfg) if isinstance(cfg, str) else cfg
    res = json.loads(res) if isinstance(res, str) else res
    return cfg, res

def rows_at(res, threads):
    gemm = [r for r in res if r["kernel"] == "gemm" and r["threads"] == threads]
    assert gemm, f"bench artifact has no gemm rows at threads={threads}"
    return max(gemm, key=lambda r: r["flops"])

# Live smoke run: tiny shapes, so floors are loose — this checks the wiring
# (per-thread rows, simd column) and guards against gross regressions.
cfg, res = load("target/experiments/BENCH_tensor_kernels.json")
assert cfg["fast_math"] is False, "CI bench must run the bit-exact default path"
t1 = rows_at(res, 1)
assert t1["speedup"] >= 1.0, (t1["shape"], t1["speedup"])
if cfg["simd_kernel"] != "scalar":
    assert t1["simd_speedup"] > 0.8, (t1["shape"], t1["simd_speedup"])
if cfg["cores"] >= 2:
    # Parallel-speedup floor only where a second core actually exists.
    t2 = rows_at(res, 2)
    assert t2["parallel_speedup"] >= 1.6, (t2["shape"], t2["parallel_speedup"])
    live = f"par {t2['parallel_speedup']:.2f}x@2t"
else:
    # Single-core runner (the loadgen history shows CI can land on one):
    # require only that pool dispatch does not regress the serial path.
    assert t1["parallel_speedup"] >= 0.8, (t1["shape"], t1["parallel_speedup"])
    live = f"1-core, par {t1['parallel_speedup']:.2f}x@1t"

# Committed full-size artifact: the real floors from the PR-9 acceptance
# criteria, evaluated against the machine that produced it.
ccfg, cres = load("BENCH_tensor_kernels.json")
assert ccfg["fast_math"] is False
c1 = rows_at(cres, 1)
assert c1["speedup"] >= 2.0, (c1["shape"], c1["speedup"])
if ccfg["simd_kernel"] != "scalar":
    assert c1["simd_speedup"] >= 1.4, (c1["shape"], c1["simd_speedup"])
if ccfg["cores"] >= 2:
    c2 = rows_at(cres, 2)
    assert c2["parallel_speedup"] >= 1.6, (c2["shape"], c2["parallel_speedup"])
else:
    assert c1["parallel_speedup"] >= 0.9, (c1["shape"], c1["parallel_speedup"])
print(
    f"bench smoke OK: live {t1['shape']} speedup {t1['speedup']:.2f}x "
    f"simd {t1['simd_speedup']:.2f}x ({live}); committed {c1['shape']} "
    f"{c1['speedup']:.2f}x seed, simd {c1['simd_speedup']:.2f}x "
    f"[{ccfg['simd_kernel']}, {ccfg['cores']} core(s)]"
)
EOF

echo "==> graph scale bench smoke (sparse path: equivalence matrix + sub-quadratic floor)"
cargo run -q --release -p d2stgnn-bench --bin graph_scale -- --fast
python3 - <<'EOF'
import json

def load(path):
    doc = json.load(open(path))
    assert doc["schema"] == "d2stgnn-bench-v1", doc["schema"]
    assert doc["name"] == "graph_scale"
    res = doc["results"]
    res = json.loads(res) if isinstance(res, str) else res
    return res

# Live smoke run: small networks, so only the wiring and the dense-sparse
# equivalence matrix are enforced (the binary itself asserts the 6-cell
# byte-identity before writing the artifact; re-check here for the record).
res = load("target/experiments/BENCH_graph_scale.json")
eq = res["equivalence"]
assert eq["identical"] is True, "sparse forecasts diverged from dense"
assert eq["runs"] >= 6, eq["runs"]
assert len(res["rows"]) >= 4, len(res["rows"])
assert all(r["epoch_ms"] > 0 and r["serve_ms"] > 0 for r in res["rows"])

# Committed full-run artifact: the PR-10 acceptance criteria — at least 4
# network sizes up to >= 50k nodes, epoch-time scaling exponent < 1.5
# (sub-quadratic: the dense path is >= 2 by construction), equivalence held.
full = load("BENCH_graph_scale.json")
sizes = [r["nodes"] for r in full["rows"]]
assert len(sizes) >= 4, sizes
assert max(sizes) >= 50_000, sizes
assert full["epoch_exponent"] < 1.5, full["epoch_exponent"]
assert full["equivalence"]["identical"] is True
print(
    f"graph scale OK: live exponent {res['epoch_exponent']:.2f} "
    f"({len(res['rows'])} sizes), committed exponent "
    f"{full['epoch_exponent']:.2f} up to {max(sizes)} nodes, "
    f"equivalence {full['equivalence']['runs']} runs identical"
)
EOF

echo "==> httpd front-end: crate tests + 2-shard scale-out smoke"
cargo test -q -p d2stgnn-httpd
cargo test -q -p d2stgnn-httpd --features obsv
cargo test -q -p d2stgnn-httpd --features sanitize
cargo run -q --release -p d2stgnn-bench --bin loadgen -- --fast
python3 - <<'EOF'
import json
doc = json.load(open("target/experiments/BENCH_serve_scaleout.json"))
assert doc["schema"] == "d2stgnn-bench-v1", doc["schema"]
assert doc["name"] == "serve_scaleout"
res = doc["results"]
phases = {r["phase"]: r for r in res["phases"]}
assert set(phases) == {"saturate_1shard", "saturate_2shard", "overload_4x"}
summary = res["summary"]
# The smoke run is short and noisy; require only a clear scaling signal.
# The committed full-run artifact is where the 1.7x+ floor is enforced.
assert summary["scaleout_ratio"] >= 1.3, summary["scaleout_ratio"]
assert summary["overload_shed_503"] > 0, "admission control never engaged"
assert summary["overload_p99_ms"] < 1000.0, summary["overload_p99_ms"]
committed = json.load(open("BENCH_serve_scaleout.json"))
full = json.loads(committed["results"]) if isinstance(committed["results"], str) else committed["results"]
assert full["summary"]["scaleout_ratio"] >= 1.7, full["summary"]["scaleout_ratio"]
print(
    f"scale-out smoke OK: {summary['scaleout_ratio']:.2f}x live, "
    f"{full['summary']['scaleout_ratio']:.2f}x committed, "
    f"p99 {summary['overload_p99_ms']:.0f} ms under 4x load"
)
EOF

echo "==> tracing overhead smoke (obsv inert baseline vs live, same binary)"
cargo run -q --release -p d2stgnn-bench --bin tracing_overhead -- --fast
cargo run -q --release -p d2stgnn-bench --features obsv --bin tracing_overhead -- --fast
python3 - <<'EOF'
import json
doc = json.load(open("target/experiments/BENCH_tracing_overhead.json"))
assert doc["schema"] == "d2stgnn-bench-v1", doc["schema"]
assert doc["name"] == "tracing_overhead"
res = doc["results"]
res = json.loads(res) if isinstance(res, str) else res
assert res["obsv_enabled"] is True
assert res["baseline_req_per_s"] > 0 and res["traced_req_per_s"] > 0
# The smoke run is short and scheduler-noisy; require only that tracing is
# not catastrophically slow. The committed full-run artifact is where the
# < 3% acceptance bar is enforced.
assert res["overhead_pct"] < 15.0, res["overhead_pct"]
committed = json.load(open("BENCH_tracing_overhead.json"))
full = committed["results"]
full = json.loads(full) if isinstance(full, str) else full
assert full["obsv_enabled"] is True
assert full["overhead_pct"] < 3.0, full["overhead_pct"]
print(
    f"tracing overhead OK: {res['overhead_pct']:+.2f}% live (smoke), "
    f"{full['overhead_pct']:+.2f}% committed (bar < 3%)"
)
EOF

echo "CI OK"
