#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, release build, full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> xlint (workspace static analysis)"
cargo run -q -p xlint

echo "==> cargo test -q --features sanitize (autograd + lock-order sanitizers)"
cargo test -q --features sanitize
cargo test -q -p d2stgnn-tensor --features sanitize
cargo test -q -p d2stgnn-serve --features sanitize

echo "==> telemetry layer: tests with the obsv feature off and on"
cargo test -q -p d2stgnn-obsv
cargo test -q -p d2stgnn-obsv --features enabled
cargo test -q -p d2stgnn-tensor --features obsv
cargo test -q -p d2stgnn-core --features obsv
cargo test -q -p d2stgnn-serve --features obsv
cargo test -q --features obsv
cargo clippy -p d2stgnn-obsv --all-targets --features enabled -- -D warnings
cargo clippy -p d2stgnn-bench --all-targets --features obsv -- -D warnings

echo "==> obsv smoke run (2-epoch tiny train + served batch, JSONL validated)"
cargo run -q -p d2stgnn-bench --features obsv --bin obsv_smoke

echo "==> resume fault-injection smoke (SIGKILL mid-epoch, bit-identical resume)"
cargo test -q --test resume_e2e -- --exact sigkill_mid_epoch_then_resume_is_bit_identical

echo "==> tensor kernel bench smoke (release, artifact schema + speedup floor)"
cargo run -q --release -p d2stgnn-bench --bin tensor_kernels -- --fast
python3 - <<'EOF'
import json
doc = json.load(open("target/experiments/BENCH_tensor_kernels.json"))
assert doc["schema"] == "d2stgnn-bench-v1", doc["schema"]
assert doc["name"] == "tensor_kernels"
gemm = [r for r in doc["results"] if r["kernel"] == "gemm"]
assert gemm, "bench artifact has no gemm rows"
largest = max(gemm, key=lambda r: r["flops"])
# Smoke shapes are tiny, so require only "no slower than the seed kernel";
# the committed full-size artifact is where the 2x+ shows up.
assert largest["speedup"] >= 1.0, (largest["shape"], largest["speedup"])
print(f"bench smoke OK: {largest['shape']} speedup {largest['speedup']:.2f}x")
EOF

echo "CI OK"
