//! Serve forecasts over HTTP: train a tiny model, register it on two serve
//! shards behind the `httpd` front-end + shard router, and talk to it the
//! way an external client would — plain HTTP/1.1 over a TCP socket.
//!
//! Run with: `cargo run --release --example serve_http`

use d2stgnn::httpd::api::ForecastBody;
use d2stgnn::prelude::*;
use d2stgnn::serve::ModelFactory;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Send one request over a fresh connection and return (status, body).
fn http(addr: std::net::SocketAddr, request: String) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read"); // Connection: close ⇒ EOF-framed
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    http(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str, tenant: &str) -> (u16, String) {
    http(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: demo\r\nX-Tenant: {tenant}\r\n\
             Content-Type: application/json\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small city and a one-epoch training pass — enough for a live model.
    let mut sim = SimulatorConfig::tiny();
    sim.num_steps = 2 * 288;
    let data = WindowedDataset::new(simulate(&sim), 12, 12, (0.6, 0.2, 0.2));
    let n = data.num_nodes();
    let mut cfg = D2stgnnConfig::small(n);
    cfg.layers = 1;

    let mut rng = StdRng::seed_from_u64(0);
    let model = D2stgnn::new(cfg.clone(), &data.data().network.clone(), &mut rng);
    Trainer::new(TrainConfig {
        max_epochs: 1,
        verbose: false,
        ..TrainConfig::default()
    })
    .train(&model, &data)?;
    let ckpt = checkpoint::snapshot(&model, "metr-sim");

    // Two serve shards, each with the model registered; the router pins the
    // demo city to shard 1 and hashes everything else.
    let network = data.data().network.clone();
    let factory: ModelFactory = Arc::new(move || {
        let mut rng = StdRng::seed_from_u64(0);
        Box::new(D2stgnn::new(cfg.clone(), &network, &mut rng))
    });
    let router = Arc::new(ShardRouter::new());
    for id in 0..2u64 {
        let registry = Arc::new(ModelRegistry::new());
        registry.register(
            "metr-sim",
            Arc::clone(&factory),
            ckpt.clone(),
            *data.scaler(),
            [data.th(), n],
        )?;
        let shard = Arc::new(Server::start(registry, ServeConfig::default()).expect("shard"));
        router.add_shard(id, shard)?;
    }
    router.pin_city("metr-sim", 1)?;

    // The HTTP front-end: per-tenant quotas, bounded everything.
    let server = HttpServer::bind(
        "127.0.0.1:0",
        Arc::clone(&router),
        HttpdConfig {
            quota: Some(QuotaConfig {
                rate_per_sec: 5.0,
                burst: 10.0,
                max_tenants: 100,
            }),
            ..HttpdConfig::default()
        },
    )?;
    let addr = server.local_addr();
    println!("listening on http://{addr}");

    let (status, body) = get(addr, "/healthz");
    println!("GET /healthz      -> {status} {body}");
    let (status, body) = get(addr, "/models");
    println!("GET /models       -> {status} {body}");

    // A forecast for the pinned city: the reply names the shard that served it.
    let raw = data.data();
    let start = raw.values.shape()[0] - data.th();
    let window: Vec<Vec<f32>> = (0..data.th())
        .map(|t| (0..n).map(|i| raw.values.at(&[start + t, i])).collect())
        .collect();
    let body = serde_json::to_string(&ForecastBody {
        model: "metr-sim".to_string(),
        window,
        tod: (0..data.th()).map(|t| raw.time_of_day(start + t)).collect(),
        dow: (0..data.th()).map(|t| raw.day_of_week(start + t)).collect(),
        deadline_ms: Some(2_000),
        sensor: None,
        city: Some("metr-sim".to_string()),
    })?;
    let (status, reply) = post(addr, "/v1/forecast", &body, "demo-tenant");
    let preview: String = reply.chars().take(120).collect();
    println!("POST /v1/forecast -> {status} {preview}…");
    assert_eq!(status, 200);
    assert!(
        reply.contains("\"shard\":1"),
        "pinned city lands on shard 1"
    );

    // Burn through the tenant's burst to see a quota denial.
    let denied = (0..12)
        .map(|_| post(addr, "/v1/forecast", &body, "greedy").0)
        .filter(|&s| s == 429)
        .count();
    println!("12 rapid requests from tenant 'greedy': {denied} denied with 429");

    let (_, metrics) = get(addr, "/metrics");
    let line = metrics
        .lines()
        .find(|l| l.starts_with("d2stgnn_httpd_requests_total"))
        .unwrap_or("d2stgnn_httpd_requests_total <missing>");
    println!("GET /metrics      -> {line}");

    server.shutdown()?;
    for id in 0..2u64 {
        if let Some(shard) = router.remove_shard(id) {
            if let Ok(s) = Arc::try_unwrap(shard) {
                s.shutdown().expect("shard shutdown");
            }
        }
    }
    Ok(())
}
