//! The deployment loop: train a model, checkpoint it to JSON, export the
//! dataset to the CSV interchange format, then — as a separate "service"
//! would — reload both into the inference engine and serve forecasts through
//! it. Demonstrates `d2stgnn::model::checkpoint`, `d2stgnn::data::io`, and
//! `d2stgnn::serve`.
//!
//! Run with: `cargo run --release --example save_and_serve`

use d2stgnn::data::io;
use d2stgnn::prelude::*;
use d2stgnn::serve::ModelFactory;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn model_config(n: usize) -> D2stgnnConfig {
    let mut cfg = D2stgnnConfig::small(n);
    cfg.layers = 1;
    cfg
}

/// Build a raw-scale request for the window whose input starts at `start`.
fn request_at(data: &WindowedDataset, start: usize, model: &str) -> InferRequest {
    let (th, n) = (data.th(), data.num_nodes());
    let raw = data.data();
    let mut window = Array::zeros(&[th, n, 1]);
    let (mut tod, mut dow) = (Vec::new(), Vec::new());
    for t in 0..th {
        tod.push(raw.time_of_day(start + t));
        dow.push(raw.day_of_week(start + t));
        for i in 0..n {
            window.set(&[t, i, 0], raw.values.at(&[start + t, i]));
        }
    }
    InferRequest {
        model: model.to_string(),
        window,
        tod,
        dow,
        deadline: None,
        trace: d2stgnn_serve::TraceHandle::inert(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("d2stgnn-serve-demo");
    std::fs::create_dir_all(&dir)?;

    // ----- training side ------------------------------------------------
    let mut sim = SimulatorConfig::tiny();
    sim.num_nodes = 10;
    sim.knn = 3;
    sim.num_steps = 3 * 288;
    let raw = simulate(&sim);

    // Export the dataset the way an operator would hand it to us.
    let values_csv = dir.join("values.csv");
    let adj_csv = dir.join("adjacency.csv");
    io::save_dataset(&raw, &values_csv, &adj_csv)?;
    println!("exported dataset to {}", dir.display());

    let data = WindowedDataset::new(raw, 12, 12, (0.7, 0.1, 0.2));
    let mut rng = StdRng::seed_from_u64(0);
    let model = D2stgnn::new(model_config(10), &data.data().network.clone(), &mut rng);
    let trainer = Trainer::new(TrainConfig {
        max_epochs: 2,
        cl_step: 5,
        verbose: true,
        ..TrainConfig::default()
    });
    trainer.train(&model, &data).expect("training failed");

    let ckpt_path = dir.join("model.json");
    checkpoint::save(&model, "d2stgnn-demo", &ckpt_path)?;
    println!("checkpointed model to {}", ckpt_path.display());

    // ----- serving side (fresh process in real life) ---------------------
    let served_data = io::load_dataset(&values_csv, &adj_csv, 288, SignalKind::Speed)?;
    let served = WindowedDataset::new(served_data, 12, 12, (0.7, 0.1, 0.2));

    // The registry holds the checkpoint plus a factory that rebuilds the
    // architecture; integrity (v2 checksum) is verified on read.
    let ckpt = checkpoint::read(&ckpt_path)?;
    println!(
        "read checkpoint '{}' ({} parameters, checksum {:?})",
        ckpt.model,
        ckpt.total_params(),
        ckpt.checksum.map(|c| format!("{c:#x}"))
    );
    let network = served.data().network.clone();
    let factory: ModelFactory = Arc::new(move || {
        let mut rng = StdRng::seed_from_u64(99); // weights come from the checkpoint
        Box::new(D2stgnn::new(model_config(10), &network, &mut rng))
    });
    let registry = Arc::new(ModelRegistry::new());
    registry.register(
        "d2stgnn",
        factory,
        ckpt,
        *served.scaler(),
        [served.th(), served.num_nodes()],
    )?;

    let server =
        Server::start(Arc::clone(&registry), ServeConfig::default()).expect("start server");
    let mut ha = HistoricalAverage::new();
    ha.fit(&served);
    server.set_fallback(ha);

    // Serve the latest test window.
    let last_start = *served
        .window_starts(Split::Test)
        .last()
        .expect("test windows");
    let forecast = server.infer(request_at(&served, last_start, "d2stgnn"))?;
    println!("\n15-minute-ahead forecast per sensor (mph):");
    for i in 0..served.num_nodes() {
        print!("{:6.1}", forecast.values.at(&[2, i]));
    }
    println!();

    // The round trip is exact: served output equals the trained model's own.
    let batch = served.batch(Split::Test, &[served.len(Split::Test) - 1]);
    let mut rng = StdRng::seed_from_u64(1);
    let direct = d2stgnn::tensor::no_grad(|| model.forward(&batch, false, &mut rng)).value();
    let direct = served.scaler().inverse_transform(&direct);
    let mut max_diff = 0f32;
    for t in 0..served.tf() {
        for i in 0..served.num_nodes() {
            max_diff = max_diff.max((direct.at(&[0, t, i, 0]) - forecast.values.at(&[t, i])).abs());
        }
    }
    println!(
        "\nserved vs in-process forecast max |diff| = {max_diff} (identical: {})",
        max_diff == 0.0
    );

    let stats = server.stats();
    println!(
        "server stats: {} requests, {} batches, p50 {:?}, p95 {:?}",
        stats.requests, stats.batches, stats.p50_latency, stats.p95_latency
    );
    server.shutdown().expect("clean shutdown");
    Ok(())
}
