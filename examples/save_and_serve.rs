//! The deployment loop: train a model, checkpoint it to JSON, export the
//! dataset to the CSV interchange format, then — as a separate "service"
//! would — reload both and serve a forecast. Demonstrates
//! `d2stgnn::model::checkpoint` and `d2stgnn::data::io`.
//!
//! Run with: `cargo run --release --example save_and_serve`

use d2stgnn::data::io;
use d2stgnn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_model(n: usize, seed: u64) -> D2stgnnConfig {
    let mut cfg = D2stgnnConfig::small(n);
    cfg.layers = 1;
    let _ = seed;
    cfg
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("d2stgnn-serve-demo");
    std::fs::create_dir_all(&dir)?;

    // ----- training side ------------------------------------------------
    let mut sim = SimulatorConfig::tiny();
    sim.num_nodes = 10;
    sim.knn = 3;
    sim.num_steps = 3 * 288;
    let raw = simulate(&sim);

    // Export the dataset the way an operator would hand it to us.
    let values_csv = dir.join("values.csv");
    let adj_csv = dir.join("adjacency.csv");
    io::save_dataset(&raw, &values_csv, &adj_csv)?;
    println!("exported dataset to {}", dir.display());

    let data = WindowedDataset::new(raw, 12, 12, (0.7, 0.1, 0.2));
    let mut rng = StdRng::seed_from_u64(0);
    let model = D2stgnn::new(build_model(10, 0), &data.data().network.clone(), &mut rng);
    let trainer = Trainer::new(TrainConfig {
        max_epochs: 2,
        cl_step: 5,
        verbose: true,
        ..TrainConfig::default()
    });
    trainer.train(&model, &data);

    let ckpt_path = dir.join("model.json");
    checkpoint::save(&model, "d2stgnn-demo", &ckpt_path)?;
    println!("checkpointed model to {}", ckpt_path.display());

    // ----- serving side (fresh process in real life) ---------------------
    let served_data = io::load_dataset(&values_csv, &adj_csv, 288, SignalKind::Speed)?;
    let served = WindowedDataset::new(served_data, 12, 12, (0.7, 0.1, 0.2));
    let mut rng = StdRng::seed_from_u64(99); // different init...
    let fresh = D2stgnn::new(build_model(10, 99), &served.data().network.clone(), &mut rng);
    let tag = checkpoint::load(&fresh, &ckpt_path)?; // ...restored here
    println!("restored checkpoint '{tag}'");

    // Serve the latest window (inference mode: no autograd graph).
    let last = served.len(Split::Test) - 1;
    let batch = served.batch(Split::Test, &[last]);
    let mut rng = StdRng::seed_from_u64(1);
    let pred = d2stgnn::tensor::no_grad(|| fresh.forward(&batch, false, &mut rng)).value();
    let pred = served.scaler().inverse_transform(&pred);

    println!("\n15-minute-ahead forecast per sensor (mph):");
    for i in 0..served.num_nodes() {
        print!("{:6.1}", pred.at(&[0, 2, i, 0]));
    }
    println!();

    // The round trip is exact: the served model equals the trained one.
    let original = trainer.evaluate(&model, &served, Split::Test).overall;
    let restored = trainer.evaluate(&fresh, &served, Split::Test).overall;
    println!(
        "\ntest MAE original {:.4} vs restored {:.4} (identical: {})",
        original.mae,
        restored.mae,
        (original.mae - restored.mae).abs() < 1e-6
    );
    Ok(())
}
