//! A realistic deployment scenario: build a traffic network from explicit
//! sensor coordinates and road distances (a small arterial grid), simulate
//! its history, train D²STGNN, and print a next-hour forecast for the
//! morning rush at a chosen intersection — the operational query an ITS
//! service would run (Section 1 of the paper).
//!
//! Run with: `cargo run --release --example forecast_city`

use d2stgnn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build a 4x4 arterial grid: sensors at intersections, roads along the
/// grid lines, distances in (scaled) miles.
fn build_grid_network(side: usize) -> TrafficNetwork {
    let n = side * side;
    let coords: Vec<(f32, f32)> = (0..n)
        .map(|i| ((i % side) as f32, (i / side) as f32))
        .collect();
    let mut distances = vec![f32::INFINITY; n * n];
    for i in 0..n {
        let (xi, yi) = (i % side, i / side);
        for j in 0..n {
            if i == j {
                continue;
            }
            let (xj, yj) = (j % side, j / side);
            // Grid roads: connect 4-neighbours only.
            let manhattan = xi.abs_diff(xj) + yi.abs_diff(yj);
            if manhattan == 1 {
                distances[i * n + j] = 1.0;
            }
        }
    }
    TrafficNetwork::from_distances(n, &distances, Some(1.0), 0.05, coords)
}

fn main() {
    let side = 4;
    let network = build_grid_network(side);
    println!(
        "city grid: {} intersections, {} directed road segments",
        network.num_nodes(),
        network.num_edges()
    );

    // Simulate history over this many steps; the simulator builds its own
    // random network, so we re-simulate with a matching node count and then
    // forecast on the simulated series (the grid network above demonstrates
    // the custom-network API used for the graph context).
    let mut sim = SimulatorConfig::tiny();
    sim.num_nodes = network.num_nodes();
    sim.knn = 4;
    sim.num_steps = 5 * 288;
    let windowed = WindowedDataset::new(simulate(&sim), 12, 12, (0.7, 0.1, 0.2));

    let mut cfg = D2stgnnConfig::small(windowed.num_nodes());
    cfg.layers = 2;
    let mut rng = StdRng::seed_from_u64(3);
    let model = D2stgnn::new(cfg, &windowed.data().network.clone(), &mut rng);
    let trainer = Trainer::new(TrainConfig {
        max_epochs: 4,
        patience: 2,
        cl_step: 5,
        verbose: true,
        ..TrainConfig::default()
    });
    trainer.train(&model, &windowed).expect("training failed");

    // Find a test window whose LAST input step lands in the morning rush
    // (around 8am) — the situation of the paper's Figure 2.
    let rush_slot = 8 * 12; // 8:00 with 5-minute sampling
    let starts = windowed.window_starts(Split::Test).to_vec();
    let data = windowed.data();
    let rush_idx = starts
        .iter()
        .position(|&s| data.time_of_day(s + 11) == rush_slot)
        .unwrap_or(0);

    let batch = windowed.batch(Split::Test, &[rush_idx]);
    let mut rng = StdRng::seed_from_u64(4);
    let pred_norm = model.forward(&batch, false, &mut rng).value();
    let pred = windowed.scaler().inverse_transform(&pred_norm);

    let sensor = 5; // an interior intersection
    println!("\nnext-hour speed forecast for sensor {sensor} starting at 08:00:");
    println!("{:>8} {:>12} {:>12}", "minute", "forecast", "actual");
    for h in 0..12 {
        println!(
            "{:>8} {:>11.1}  {:>11.1}",
            (h + 1) * 5,
            pred.at(&[0, h, sensor, 0]),
            batch.y.at(&[0, h, sensor, 0]),
        );
    }
    let mae: f32 = (0..12)
        .map(|h| (pred.at(&[0, h, sensor, 0]) - batch.y.at(&[0, h, sensor, 0])).abs())
        .sum::<f32>()
        / 12.0;
    println!("\nsensor-{sensor} next-hour MAE: {mae:.2} mph");
}
