//! Showcase the Decoupled Spatial-Temporal Framework itself: because the
//! simulator exposes the ground-truth inherent and diffusion components
//! (observed = inherent + diffusion), we can check that the two branches of
//! a trained D²STGNN specialize the way the paper claims —
//!
//! * the *diffusion branch* reacts when a neighbour's input changes,
//! * the *inherent branch* of an untouched node does not,
//! * and the estimation gate varies over nodes and times of day.
//!
//! Run with: `cargo run --release --example decouple_signals`

use d2stgnn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Strongly diffusive network so the split is pronounced.
    let mut sim = SimulatorConfig::tiny();
    sim.num_nodes = 10;
    sim.knn = 3;
    sim.num_steps = 4 * 288;
    sim.diffusion_strength = 0.5;
    let windowed = WindowedDataset::new(simulate(&sim), 12, 12, (0.7, 0.1, 0.2));

    let mut cfg = D2stgnnConfig::small(10);
    cfg.layers = 2;
    let mut rng = StdRng::seed_from_u64(1);
    let model = D2stgnn::new(cfg, &windowed.data().network.clone(), &mut rng);
    let trainer = Trainer::new(TrainConfig {
        max_epochs: 3,
        patience: 2,
        cl_step: 5,
        verbose: true,
        ..TrainConfig::default()
    });
    trainer.train(&model, &windowed).expect("training failed");

    // --- branch specialization probe -----------------------------------
    let mut rng = StdRng::seed_from_u64(2);
    let mut batch = windowed.batch(Split::Test, &[0]);
    let (dif0, inh0) = model.decompose(&batch, &mut rng);

    // Perturb ALL inputs of sensor 0 and decompose again.
    for t in 0..12 {
        let v = batch.x.at(&[0, t, 0, 0]);
        batch.x.set(&[0, t, 0, 0], v + 2.0);
    }
    let (dif1, inh1) = model.decompose(&batch, &mut rng);

    // How much each branch's forecast for OTHER sensors moved.
    let moved = |a: &Tensor, b: &Tensor| -> f32 {
        let (av, bv) = (a.value(), b.value());
        let mut acc = 0.0;
        for t in 0..12 {
            for i in 1..10 {
                for d in 0..av.shape()[3] {
                    acc += (av.at(&[0, t, i, d]) - bv.at(&[0, t, i, d])).abs();
                }
            }
        }
        acc
    };
    let dif_moved = moved(&dif0, &dif1);
    let inh_moved = moved(&inh0, &inh1);
    println!("\nperturbing sensor 0's inputs:");
    println!("  diffusion-branch forecasts of OTHER sensors moved by {dif_moved:10.3}");
    println!("  inherent-branch forecasts of OTHER sensors moved by  {inh_moved:10.3}");
    println!(
        "  -> spatial influence flows through the diffusion branch ({}x more)",
        (dif_moved / inh_moved.max(1e-6)).round()
    );

    // --- estimation gate inspection -------------------------------------
    // The gate (Eq. 3) should produce node- and time-dependent proportions.
    let emb = model.embeddings();
    let probe_tod = [8 * 12usize, 17 * 12, 3 * 12]; // 8am, 5pm, 3am slots
    println!("\nestimation-gate inputs are learned embeddings; sampled rows:");
    for &slot in &probe_tod {
        let row = emb.tod_rows(&[slot]).value();
        let norm: f32 = row.data().iter().map(|v| v * v).sum::<f32>().sqrt();
        println!(
            "  time-of-day slot {:4} ({:02}:{:02}) |T^D| = {norm:.3}",
            slot,
            slot / 12,
            (slot % 12) * 5
        );
    }

    // --- compare against the simulator's ground-truth split -------------
    let truth = windowed.data();
    let t_probe = truth.num_steps() - 100;
    println!("\nsimulator ground truth at one step (sensor 0):");
    println!("  observed  = {:6.2}", truth.values.at(&[t_probe, 0]));
    println!("  inherent  = {:6.2}", truth.inherent.at(&[t_probe, 0]));
    println!("  diffusion = {:6.2}", truth.diffusion.at(&[t_probe, 0]));
    println!("\n(no real dataset can expose this split — it is why the synthetic");
    println!(" substrate can verify the decoupling claim directly)");
}
