//! Compare D²STGNN against classical and deep baselines on one synthetic
//! dataset — a miniature of the paper's Table 3.
//!
//! Run with: `cargo run --release --example compare_models`

use d2stgnn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn print_row(name: &str, horizons: &[(usize, Metrics)]) {
    print!("{name:<10}");
    for (h, m) in horizons {
        print!(" | H{h:<2} MAE {:5.2} MAPE {:5.2}%", m.mae, m.mape * 100.0);
    }
    println!();
}

fn main() {
    let mut sim = SimulatorConfig::tiny();
    sim.num_nodes = 14;
    sim.knn = 4;
    sim.num_steps = 5 * 288;
    let windowed = WindowedDataset::new(simulate(&sim), 12, 12, (0.7, 0.1, 0.2));
    println!(
        "dataset: {} sensors, {} train windows\n",
        windowed.num_nodes(),
        windowed.len(Split::Train)
    );

    // --- classical baselines: fit once, evaluate on the test split.
    let mut ha = HistoricalAverage::new();
    ha.fit(&windowed);
    let (_, _, ha_h) = evaluate_classical(&ha, &windowed, Split::Test, 0.0);
    print_row("HA", &ha_h);

    let mut var = VectorAutoRegression::new(3, 1.0);
    var.fit(&windowed);
    let (_, _, var_h) = evaluate_classical(&var, &windowed, Split::Test, 0.0);
    print_row("VAR", &var_h);

    // --- deep models: same trainer, same budget, same seed.
    let train_cfg = TrainConfig {
        max_epochs: 4,
        patience: 2,
        cl_step: 5,
        ..TrainConfig::default()
    };
    let trainer = Trainer::new(train_cfg);
    let net = windowed.data().network.clone();

    let mut rng = StdRng::seed_from_u64(0);
    let gwnet = GraphWaveNet::new(&net, 16, 12, true, &mut rng);
    trainer.train(&gwnet, &windowed).expect("training failed");
    print_row(
        "GWNet",
        &trainer.evaluate(&gwnet, &windowed, Split::Test).horizons,
    );

    let mut rng = StdRng::seed_from_u64(0);
    let mut cfg = D2stgnnConfig::small(windowed.num_nodes());
    cfg.layers = 2;
    let d2 = D2stgnn::new(cfg, &net, &mut rng);
    trainer.train(&d2, &windowed).expect("training failed");
    print_row(
        "D2STGNN",
        &trainer.evaluate(&d2, &windowed, Split::Test).horizons,
    );

    println!("\n(for the full Table 3 comparison across four datasets run");
    println!(" `cargo run -p d2stgnn-bench --release --bin table3`)");
}
