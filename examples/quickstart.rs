//! Quickstart: simulate a small traffic network, train D²STGNN for a few
//! epochs, and report test metrics at the paper's horizons.
//!
//! Run with: `cargo run --release --example quickstart`

use d2stgnn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Simulate five days of 5-minute speed data over a 16-sensor network.
    //    The generator superposes a hidden inherent series (daily peaks,
    //    incidents, noise) and a hidden diffusion series (graph-propagated
    //    congestion) — the two signals D²STGNN is designed to decouple.
    let mut sim = SimulatorConfig::tiny();
    sim.num_nodes = 16;
    sim.knn = 4;
    sim.num_steps = 5 * 288;
    let data = simulate(&sim);
    println!(
        "simulated {} sensors x {} steps ({} road edges)",
        data.num_nodes(),
        data.num_steps(),
        data.network.num_edges()
    );

    // 2. Window it: 12 input steps (1 hour) -> 12 forecast steps.
    let windowed = WindowedDataset::new(data, 12, 12, (0.7, 0.1, 0.2));
    println!(
        "windows: {} train / {} val / {} test",
        windowed.len(Split::Train),
        windowed.len(Split::Val),
        windowed.len(Split::Test)
    );

    // 3. Build a compact D²STGNN (all paper components on: estimation gate,
    //    residual decomposition, dynamic graph, adaptive matrix, GRU + MSA).
    let mut cfg = D2stgnnConfig::small(16);
    cfg.layers = 2;
    let mut rng = StdRng::seed_from_u64(0);
    let model = D2stgnn::new(cfg, &windowed.data().network.clone(), &mut rng);
    println!("model: {} parameters", model.num_parameters());

    // 4. Train with the paper's recipe: Adam on masked MAE, curriculum
    //    learning, early stopping on validation MAE.
    let trainer = Trainer::new(TrainConfig {
        max_epochs: 5,
        patience: 2,
        cl_step: 5,
        verbose: true,
        ..TrainConfig::default()
    });
    let report = trainer.train(&model, &windowed).expect("training failed");
    println!(
        "trained {} epochs, best val MAE {:.3} (epoch {}), {:.1}s/epoch",
        report.epochs.len(),
        report.best_val_mae,
        report.best_epoch,
        report.avg_epoch_seconds
    );

    // 5. Evaluate on the held-out test windows.
    let eval = trainer.evaluate(&model, &windowed, Split::Test);
    println!("\ntest metrics (speed, mph):");
    for (h, m) in &eval.horizons {
        println!(
            "  {:2} steps ahead ({:3} min): MAE {:5.2}  RMSE {:5.2}  MAPE {:5.2}%",
            h,
            h * 5,
            m.mae,
            m.rmse,
            m.mape * 100.0
        );
    }
    println!(
        "  overall:                  MAE {:5.2}  RMSE {:5.2}  MAPE {:5.2}%",
        eval.overall.mae,
        eval.overall.rmse,
        eval.overall.mape * 100.0
    );
}
