//! A day in the life of the inference engine: register a trained model,
//! stream a burst of forecast requests through the micro-batching server,
//! hot-swap to retrained weights without dropping traffic, and watch the
//! fallback absorb an overload.
//!
//! Run with: `cargo run --release --example serve_city`

use d2stgnn::prelude::*;
use d2stgnn::serve::ModelFactory;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn model_config(n: usize) -> D2stgnnConfig {
    let mut cfg = D2stgnnConfig::small(n);
    cfg.layers = 1;
    cfg
}

fn request_at(data: &WindowedDataset, start: usize) -> InferRequest {
    let (th, n) = (data.th(), data.num_nodes());
    let raw = data.data();
    let mut window = Array::zeros(&[th, n, 1]);
    let (mut tod, mut dow) = (Vec::new(), Vec::new());
    for t in 0..th {
        tod.push(raw.time_of_day(start + t));
        dow.push(raw.day_of_week(start + t));
        for i in 0..n {
            window.set(&[t, i, 0], raw.values.at(&[start + t, i]));
        }
    }
    InferRequest {
        model: "d2stgnn".to_string(),
        window,
        tod,
        dow,
        deadline: None,
        trace: d2stgnn_serve::TraceHandle::inert(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small city: 12 sensors, two days of five-minute readings.
    let mut sim = SimulatorConfig::tiny();
    sim.num_steps = 2 * 288;
    let data = WindowedDataset::new(simulate(&sim), 12, 12, (0.6, 0.2, 0.2));
    let n = data.num_nodes();

    // Quick training pass, then snapshot v1.
    let mut rng = StdRng::seed_from_u64(0);
    let model = D2stgnn::new(model_config(n), &data.data().network.clone(), &mut rng);
    let trainer = Trainer::new(TrainConfig {
        max_epochs: 1,
        verbose: false,
        ..TrainConfig::default()
    });
    trainer.train(&model, &data).expect("training failed");
    let v1 = checkpoint::snapshot(&model, "d2stgnn-v1");

    let network = data.data().network.clone();
    let factory: ModelFactory = Arc::new(move || {
        let mut rng = StdRng::seed_from_u64(0);
        Box::new(D2stgnn::new(model_config(12), &network, &mut rng))
    });
    let registry = Arc::new(ModelRegistry::new());
    let gen1 = registry.register("d2stgnn", factory, v1, *data.scaler(), [data.th(), n])?;
    println!("registered d2stgnn generation {gen1}");

    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 2,
            max_batch: 4,
            max_wait: Duration::from_millis(2),
            queue_capacity: 32,
        },
    )
    .expect("start server");
    let mut ha = HistoricalAverage::new();
    ha.fit(&data);
    server.set_fallback(ha);

    // Morning burst: every test window, batched by the server.
    let starts: Vec<usize> = data.window_starts(Split::Test).to_vec();
    let handles: Vec<_> = starts
        .iter()
        .map(|s| server.submit(request_at(&data, *s)))
        .collect::<Result<_, _>>()?;
    let mut served_by_model = 0usize;
    for handle in handles {
        let forecast = handle.wait()?;
        served_by_model += usize::from(!forecast.fallback);
    }
    println!(
        "burst of {} requests served ({} by the model)",
        starts.len(),
        served_by_model
    );

    // Retrain briefly and hot-swap: traffic keeps flowing during the reload.
    trainer.train(&model, &data).expect("training failed");
    let gen2 = registry.reload("d2stgnn", checkpoint::snapshot(&model, "d2stgnn-v2"))?;
    let forecast = server.infer(request_at(&data, starts[0]))?;
    println!(
        "hot-swapped to generation {gen2}; next forecast served by generation {}",
        forecast.generation
    );

    // A request that arrives already late degrades to the HA fallback.
    let mut late = request_at(&data, starts[0]);
    late.deadline = Some(std::time::Instant::now() - Duration::from_millis(1));
    let degraded = server.infer(late)?;
    println!(
        "late request answered by {} (fallback: {})",
        degraded.model, degraded.fallback
    );

    let stats = server.stats();
    println!(
        "\nstats: {} accepted, {} completed in {} batches (mean size {:.2}), \
         {} shed, {} fallback, {} deadline misses, p50 {:?}, p95 {:?}",
        stats.requests,
        stats.completed,
        stats.batches,
        stats.mean_batch_size,
        stats.sheds,
        stats.fallback_served,
        stats.deadline_misses,
        stats.p50_latency,
        stats.p95_latency
    );
    server.shutdown().expect("clean shutdown");
    Ok(())
}
